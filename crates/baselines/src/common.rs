//! Shared training loop for the comparison systems (§VIII-C).
//!
//! All three baselines — centralized GNN, LPGNN, naive FedGNN — train the
//! same 2-layer encoder directly on a plain graph (no trees); they differ
//! only in which *inputs* they see: raw vs privatized features, true vs
//! noised structure and labels.

use std::rc::Rc;

use lumos_common::rng::Xoshiro256pp;
use lumos_common::timer::Stopwatch;
use lumos_core::config::TaskKind;
use lumos_core::report::{EpochMetrics, RunReport};
use lumos_data::{sample_non_edges, EdgeSplit, NodeSplit};
use lumos_gnn::{
    accuracy_masked, cross_entropy_masked, link_logits, link_prediction_loss, roc_auc, Backbone,
    EncoderConfig, GnnEncoder, LinearDecoder, MessageGraph,
};
use lumos_graph::Graph;
use lumos_tensor::{Adam, ParamStore, Tape, Tensor, VarId};

/// Inputs of a plain-graph training run.
pub struct PlainRun<'a> {
    /// System name for the report.
    pub system: &'a str,
    /// Dataset name for the report.
    pub dataset: &'a str,
    /// Backbone architecture.
    pub backbone: Backbone,
    /// Task kind.
    pub task: TaskKind,
    /// Edges the model trains its message passing on (possibly noised; for
    /// unsupervised tasks these are the train-split edges).
    pub message_edges: Vec<(u32, u32)>,
    /// Node features the model sees (possibly privatized), row-major `[n,d]`.
    pub features: Tensor,
    /// Labels used for the training loss (possibly privatized).
    pub train_labels: Vec<u32>,
    /// Ground-truth labels for evaluation.
    pub true_labels: &'a [u32],
    /// Number of classes.
    pub num_classes: usize,
    /// Node split (supervised).
    pub node_split: Option<NodeSplit>,
    /// Edge split over the *true* graph (unsupervised).
    pub edge_split: Option<EdgeSplit>,
    /// The true graph (negative sampling and evaluation).
    pub true_graph: &'a Graph,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Evaluation cadence.
    pub eval_every: usize,
}

/// Trains on the plain graph and reports metrics against the ground truth.
pub fn train_plain(run: PlainRun<'_>) -> RunReport {
    let n = run.true_graph.num_nodes();
    let mut rng = Xoshiro256pp::seed_from_u64(run.seed);
    let mg = MessageGraph::from_undirected(n, &run.message_edges);

    let mut store = ParamStore::new();
    let enc_cfg = EncoderConfig::paper(run.backbone, run.features.cols());
    let encoder = GnnEncoder::new(&mut store, &enc_cfg, &mut rng);
    let decoder = match run.task {
        TaskKind::Supervised => Some(LinearDecoder::new(
            &mut store,
            "head",
            encoder.out_dim(),
            run.num_classes,
            &mut rng,
        )),
        TaskKind::Unsupervised => None,
    };
    let mut opt = Adam::new(run.lr);

    let mut report = RunReport::new(
        run.system,
        run.dataset,
        run.backbone.name(),
        run.task.name(),
    );
    let targets = Rc::new(run.train_labels.clone());
    let train_mask: Option<Rc<Vec<f32>>> = run.node_split.as_ref().map(|s| {
        Rc::new(
            s.train_mask
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect::<Vec<f32>>(),
        )
    });
    type PairLists = (Rc<Vec<u32>>, Rc<Vec<u32>>);
    let pos_pairs: Option<PairLists> = run.edge_split.as_ref().map(|s| {
        (
            Rc::new(s.train_edges.iter().map(|&(u, _)| u).collect::<Vec<u32>>()),
            Rc::new(s.train_edges.iter().map(|&(_, v)| v).collect::<Vec<u32>>()),
        )
    });

    let forward =
        |tape: &mut Tape, store: &ParamStore, training: bool, rng: &mut Xoshiro256pp| -> VarId {
            let x = tape.constant(run.features.clone());
            encoder.forward(tape, store, x, &mg, training, rng)
        };

    let mut best_val = 0.0f64;
    let mut epoch_time = Stopwatch::new();
    for epoch in 0..run.epochs {
        epoch_time.start();
        let mut tape = Tape::new();
        let h = forward(&mut tape, &store, true, &mut rng);
        let loss_var = match run.task {
            TaskKind::Supervised => {
                let dec = decoder.as_ref().expect("head");
                let logits = dec.forward(&mut tape, &store, h);
                cross_entropy_masked(
                    &mut tape,
                    logits,
                    targets.clone(),
                    train_mask.clone().expect("mask"),
                )
            }
            TaskKind::Unsupervised => {
                let (src, dst) = pos_pairs.clone().expect("pairs");
                let negs = sample_non_edges(run.true_graph, src.len(), &mut rng);
                let neg_src: Rc<Vec<u32>> = Rc::new(negs.iter().map(|&(u, _)| u).collect());
                let neg_dst: Rc<Vec<u32>> = Rc::new(negs.iter().map(|&(_, v)| v).collect());
                let pos_logits = link_logits(&mut tape, h, src, dst);
                let neg_logits = link_logits(&mut tape, h, neg_src, neg_dst);
                link_prediction_loss(&mut tape, pos_logits, neg_logits)
            }
        };
        let loss = tape.value(loss_var).item() as f64;
        store.zero_grad();
        let grads = tape.backward(loss_var);
        tape.accumulate_param_grads(&grads, &mut store);
        opt.step(&mut store);
        epoch_time.stop();

        if epoch % run.eval_every == 0 || epoch + 1 == run.epochs {
            let val = eval_metric(
                &run,
                &encoder,
                decoder.as_ref(),
                &store,
                &mg,
                false,
                &mut rng,
            );
            best_val = best_val.max(val);
            report.history.push(EpochMetrics {
                epoch,
                loss,
                val_metric: val,
            });
        }
    }

    report.test_metric = eval_metric(
        &run,
        &encoder,
        decoder.as_ref(),
        &store,
        &mg,
        true,
        &mut rng,
    );
    report.best_val_metric = best_val;
    report.avg_epoch_secs = epoch_time.secs() / run.epochs.max(1) as f64;
    report
}

fn eval_metric(
    run: &PlainRun<'_>,
    encoder: &GnnEncoder,
    decoder: Option<&LinearDecoder>,
    store: &ParamStore,
    mg: &MessageGraph,
    test: bool,
    rng: &mut Xoshiro256pp,
) -> f64 {
    let mut tape = Tape::new();
    let x = tape.constant(run.features.clone());
    let h = encoder.forward(&mut tape, store, x, mg, false, rng);
    match run.task {
        TaskKind::Supervised => {
            let split = run.node_split.as_ref().expect("split");
            let mask = if test {
                &split.test_mask
            } else {
                &split.val_mask
            };
            let dec = decoder.expect("head");
            let logits = dec.forward(&mut tape, store, h);
            accuracy_masked(tape.value(logits), run.true_labels, mask)
        }
        TaskKind::Unsupervised => {
            let split = run.edge_split.as_ref().expect("split");
            let (pos, neg) = if test {
                (&split.test_edges, &split.test_negatives)
            } else {
                (&split.val_edges, &split.val_negatives)
            };
            let score = |pairs: &[(u32, u32)], tape: &mut Tape| -> Vec<f32> {
                let src: Rc<Vec<u32>> = Rc::new(pairs.iter().map(|&(u, _)| u).collect());
                let dst: Rc<Vec<u32>> = Rc::new(pairs.iter().map(|&(_, v)| v).collect());
                let z = link_logits(tape, h, src, dst);
                tape.value(z).data().to_vec()
            };
            let p = score(pos, &mut tape);
            let ng = score(neg, &mut tape);
            roc_auc(&p, &ng)
        }
    }
}

/// Converts a dataset's raw features into the `[n, d]` tensor form.
pub fn features_tensor(features: &[f32], n: usize, dim: usize) -> Tensor {
    Tensor::from_vec(n, dim, features.to_vec())
}
