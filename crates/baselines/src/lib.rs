//! `lumos-baselines` — the comparison systems of §VIII-C.
//!
//! * **Centralized GNN** — server sees the true graph, raw features and
//!   labels (upper reference).
//! * **LPGNN-like** — server-known structure, multi-bit-privatized features
//!   (ε_x) and randomized-response labels (ε_y), with KProp denoising.
//! * **Naive FedGNN** — Gaussian-noised features, randomized-response
//!   adjacency and labels, trained on the noised graph (lower reference).
//!
//! All three share one plain-graph training loop so the only differences
//! are the privatized inputs, making the comparison a controlled one.

#![forbid(unsafe_code)]
pub mod common;
pub mod systems;

pub use common::{train_plain, PlainRun};
pub use systems::{
    run_centralized, run_lpgnn, run_naive_fedgnn, BaselineConfig, LpgnnParams, NaiveFedParams,
};
