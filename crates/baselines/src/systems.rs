//! The three comparison systems of §VIII-C.

use lumos_common::rng::Xoshiro256pp;
use lumos_core::config::TaskKind;
use lumos_core::report::RunReport;
use lumos_data::{Dataset, EdgeSplit, NodeSplit};
use lumos_gnn::Backbone;
use lumos_graph::Graph;
use lumos_ldp::{GaussianMechanism, MultiBitMechanism, RandomizedResponse};

use crate::common::{features_tensor, train_plain, PlainRun};

/// Common run parameters for the baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Backbone architecture.
    pub backbone: Backbone,
    /// Task.
    pub task: TaskKind,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate (0.01 in the paper).
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Evaluation cadence.
    pub eval_every: usize,
}

impl BaselineConfig {
    /// Paper defaults (unsupervised runs use the reduced learning rate; see
    /// `LumosConfig::new` for the rationale).
    pub fn new(backbone: Backbone, task: TaskKind) -> Self {
        Self {
            backbone,
            task,
            epochs: 80,
            lr: match task {
                TaskKind::Supervised => 0.01,
                TaskKind::Unsupervised => 0.003,
            },
            seed: 0xBA5E,
            eval_every: 10,
        }
    }

    /// Builder-style: set epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style: set seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn make_splits(
    ds: &Dataset,
    task: TaskKind,
    rng: &mut Xoshiro256pp,
) -> (Option<NodeSplit>, Option<EdgeSplit>, Vec<(u32, u32)>) {
    match task {
        TaskKind::Supervised => {
            let split = NodeSplit::uniform(ds.num_nodes(), rng);
            let edges: Vec<(u32, u32)> = ds.graph.edges().collect();
            (Some(split), None, edges)
        }
        TaskKind::Unsupervised => {
            let split = EdgeSplit::uniform(&ds.graph, rng);
            let edges = split.train_edges.clone();
            (None, Some(split), edges)
        }
    }
}

/// Centralized GNN: the server sees the true graph, raw features and labels
/// (the paper's upper reference).
pub fn run_centralized(ds: &Dataset, cfg: &BaselineConfig) -> RunReport {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let (node_split, edge_split, edges) = make_splits(ds, cfg.task, &mut rng);
    train_plain(PlainRun {
        system: "centralized",
        dataset: &ds.name,
        backbone: cfg.backbone,
        task: cfg.task,
        message_edges: edges,
        features: features_tensor(&ds.features, ds.num_nodes(), ds.feature_dim),
        train_labels: ds.labels.clone(),
        true_labels: &ds.labels,
        num_classes: ds.num_classes,
        node_split,
        edge_split,
        true_graph: &ds.graph,
        epochs: cfg.epochs,
        lr: cfg.lr,
        seed: cfg.seed,
        eval_every: cfg.eval_every,
    })
}

/// LPGNN configuration knobs (the paper sets ε_x = 2, ε_y = 1).
#[derive(Debug, Clone, Copy)]
pub struct LpgnnParams {
    /// Feature budget ε_x.
    pub epsilon_x: f64,
    /// Label budget ε_y.
    pub epsilon_y: f64,
    /// Dimensions sampled by the multi-bit mechanism.
    pub sampled_dims: usize,
    /// KProp-style feature-propagation steps applied before training.
    pub kprop_steps: usize,
    /// Label-KProp steps: noisy training labels are replaced by the mode of
    /// the noisy labels in the closed neighborhood (LPGNN's Drop-style label
    /// correction).
    pub label_kprop_steps: usize,
}

impl Default for LpgnnParams {
    fn default() -> Self {
        Self {
            epsilon_x: 2.0,
            epsilon_y: 1.0,
            sampled_dims: 16,
            kprop_steps: 2,
            label_kprop_steps: 1,
        }
    }
}

/// LPGNN-like system: the server knows the graph structure; features arrive
/// under the multi-bit mechanism (ε_x) and training labels under randomized
/// response (ε_y). A KProp-style neighborhood averaging denoises features
/// before training, as in the original system. Supervised only, matching
/// the paper's comparison.
pub fn run_lpgnn(ds: &Dataset, cfg: &BaselineConfig, params: &LpgnnParams) -> RunReport {
    assert_eq!(
        cfg.task,
        TaskKind::Supervised,
        "LPGNN is evaluated in supervised settings only (§VIII-C)"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0x17C0);
    let n = ds.num_nodes();
    let d = ds.feature_dim;

    // Feature privatization (multi-bit, ε_x).
    let mech = MultiBitMechanism::new(
        params.epsilon_x,
        d,
        params.sampled_dims.min(d).max(1),
        0.0,
        1.0,
    );
    let mut noisy = vec![0.0f32; n * d];
    for v in 0..n {
        let row = mech.privatize(&ds.features[v * d..(v + 1) * d], &mut rng);
        noisy[v * d..(v + 1) * d].copy_from_slice(&row);
    }
    // KProp denoising: average over neighborhoods (the server knows the
    // structure).
    for _ in 0..params.kprop_steps {
        noisy = kprop_once(&ds.graph, &noisy, d);
    }

    // Label privatization (k-ary randomized response, ε_y) followed by
    // Drop-style label correction: majority vote over the closed
    // neighborhood's noisy labels, repeated.
    let rr = RandomizedResponse::new(params.epsilon_y, ds.num_classes.max(2));
    let mut noisy_labels: Vec<u32> = ds
        .labels
        .iter()
        .map(|&y| rr.privatize(y, &mut rng))
        .collect();
    for _ in 0..params.label_kprop_steps {
        noisy_labels = label_mode_smooth(&ds.graph, &noisy_labels, ds.num_classes);
    }

    let mut seed_rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let (node_split, edge_split, edges) = make_splits(ds, cfg.task, &mut seed_rng);
    train_plain(PlainRun {
        system: "lpgnn",
        dataset: &ds.name,
        backbone: cfg.backbone,
        task: cfg.task,
        message_edges: edges,
        features: features_tensor(&noisy, n, d),
        train_labels: noisy_labels,
        true_labels: &ds.labels,
        num_classes: ds.num_classes,
        node_split,
        edge_split,
        true_graph: &ds.graph,
        epochs: cfg.epochs,
        lr: cfg.lr,
        seed: cfg.seed,
        eval_every: cfg.eval_every,
    })
}

/// One step of majority-vote label smoothing over closed neighborhoods.
fn label_mode_smooth(g: &Graph, labels: &[u32], num_classes: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(labels.len());
    let mut counts = vec![0u32; num_classes];
    for v in 0..g.num_nodes() as u32 {
        counts.iter_mut().for_each(|c| *c = 0);
        counts[labels[v as usize] as usize] += 1;
        for &u in g.neighbors(v) {
            counts[labels[u as usize] as usize] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i as u32)
            .unwrap_or(labels[v as usize]);
        out.push(best);
    }
    out
}

fn kprop_once(g: &Graph, features: &[f32], d: usize) -> Vec<f32> {
    let n = g.num_nodes();
    let mut out = vec![0.0f32; n * d];
    for v in 0..n as u32 {
        let nb = g.neighbors(v);
        let dst = &mut out[v as usize * d..(v as usize + 1) * d];
        // Include self to keep isolated vertices defined.
        dst.copy_from_slice(&features[v as usize * d..(v as usize + 1) * d]);
        for &u in nb {
            for (o, &x) in dst
                .iter_mut()
                .zip(&features[u as usize * d..(u as usize + 1) * d])
            {
                *o += x;
            }
        }
        let scale = 1.0 / (nb.len() + 1) as f32;
        for o in dst.iter_mut() {
            *o *= scale;
        }
    }
    out
}

/// Naive FedGNN parameters.
#[derive(Debug, Clone, Copy)]
pub struct NaiveFedParams {
    /// Gaussian feature budget ε (with δ = 1e-5, sensitivity 1).
    pub feature_epsilon: f64,
    /// Label randomized-response budget.
    pub label_epsilon: f64,
    /// Adjacency randomized-response budget: each of the `n·(n−1)/2`
    /// potential edges flips with probability `1/(e^ε + 1)`. On sparse
    /// graphs this buries the topology under noise — exactly why the naive
    /// system collapses in the paper.
    pub adjacency_epsilon: f64,
    /// Tractability cap on spurious edges, as a multiple of `|E|` (the
    /// exact RR expectation is quadratic in `n`; see DESIGN.md).
    pub max_noise_ratio: f64,
}

impl Default for NaiveFedParams {
    fn default() -> Self {
        Self {
            feature_epsilon: 2.0,
            label_epsilon: 1.0,
            adjacency_epsilon: 1.0,
            max_noise_ratio: 40.0,
        }
    }
}

/// Naive FedGNN: devices upload Gaussian-noised features, randomized-
/// response-noised adjacency rows, and RR-noised labels; the server trains
/// on the noised graph. The paper's lower reference — federation done
/// naively destroys both structure and features.
pub fn run_naive_fedgnn(ds: &Dataset, cfg: &BaselineConfig, params: &NaiveFedParams) -> RunReport {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0xFED6);
    let n = ds.num_nodes();
    let d = ds.feature_dim;

    // Features: Gaussian mechanism.
    let gauss = GaussianMechanism::calibrated(params.feature_epsilon, 1e-5, 1.0);
    let mut noisy = vec![0.0f32; n * d];
    for v in 0..n {
        let row = gauss.privatize(&ds.features[v * d..(v + 1) * d], &mut rng);
        noisy[v * d..(v + 1) * d].copy_from_slice(&row);
    }

    // Labels: randomized response.
    let rr = RandomizedResponse::new(params.label_epsilon, ds.num_classes.max(2));
    let noisy_labels: Vec<u32> = ds
        .labels
        .iter()
        .map(|&y| rr.privatize(y, &mut rng))
        .collect();

    // Splits are taken on the true graph (evaluation must be against the
    // truth); the *message* structure the server sees is the noised version
    // of what devices upload.
    let mut seed_rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let (node_split, edge_split, base_edges) = make_splits(ds, cfg.task, &mut seed_rng);
    let message_edges = noise_adjacency(n, &base_edges, params, &mut rng);

    train_plain(PlainRun {
        system: "naive-fedgnn",
        dataset: &ds.name,
        backbone: cfg.backbone,
        task: cfg.task,
        message_edges,
        features: features_tensor(&noisy, n, d),
        train_labels: noisy_labels,
        true_labels: &ds.labels,
        num_classes: ds.num_classes,
        node_split,
        edge_split,
        true_graph: &ds.graph,
        epochs: cfg.epochs,
        lr: cfg.lr,
        seed: cfg.seed,
        eval_every: cfg.eval_every,
    })
}

/// Randomized response over the adjacency matrix: true edges survive with
/// the RR keep probability; every non-edge turns on with the flip
/// probability `1/(e^ε + 1)`. The spurious edges are drawn by expected
/// count rather than per-pair coin flips (identical distribution shape,
/// tractable at paper scale), capped at `max_noise_ratio × |E|`.
fn noise_adjacency(
    n: usize,
    edges: &[(u32, u32)],
    params: &NaiveFedParams,
    rng: &mut Xoshiro256pp,
) -> Vec<(u32, u32)> {
    let rr = RandomizedResponse::new(params.adjacency_epsilon, 2);
    let keep = rr.keep_prob();
    let flip = 1.0 - keep;
    let mut out: Vec<(u32, u32)> = edges
        .iter()
        .copied()
        .filter(|_| rng.bernoulli(keep))
        .collect();
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    let non_edges = (pairs - edges.len() as f64).max(0.0);
    let expected = flip * non_edges;
    let cap = params.max_noise_ratio * edges.len() as f64;
    let spurious = expected.min(cap).round() as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < spurious && guard < 20 * spurious + 100 {
        guard += 1;
        let u = rng.next_below(n as u64) as u32;
        let v = rng.next_below(n as u64) as u32;
        if u != v {
            out.push((u.min(v), u.max(v)));
            added += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    fn cfg(task: TaskKind) -> BaselineConfig {
        BaselineConfig::new(Backbone::Gcn, task)
            .with_epochs(60)
            .with_seed(11)
    }

    #[test]
    fn centralized_supervised_is_strong() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let r = run_centralized(&ds, &cfg(TaskKind::Supervised));
        assert!(
            r.test_metric > 0.75,
            "centralized accuracy {}",
            r.test_metric
        );
        assert_eq!(r.system, "centralized");
    }

    #[test]
    fn centralized_unsupervised_is_strong() {
        let ds = Dataset::lastfm_like(Scale::Smoke);
        let r = run_centralized(&ds, &cfg(TaskKind::Unsupervised).with_epochs(150));
        assert!(r.test_metric > 0.75, "centralized AUC {}", r.test_metric);
    }

    #[test]
    fn lpgnn_between_random_and_centralized() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let lp = run_lpgnn(&ds, &cfg(TaskKind::Supervised), &LpgnnParams::default());
        let central = run_centralized(&ds, &cfg(TaskKind::Supervised));
        assert!(lp.test_metric > 0.3, "LPGNN accuracy {}", lp.test_metric);
        assert!(
            lp.test_metric <= central.test_metric + 0.05,
            "LPGNN {} should not beat centralized {}",
            lp.test_metric,
            central.test_metric
        );
    }

    #[test]
    fn naive_fedgnn_collapses() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let naive = run_naive_fedgnn(&ds, &cfg(TaskKind::Supervised), &NaiveFedParams::default());
        let central = run_centralized(&ds, &cfg(TaskKind::Supervised));
        assert!(
            naive.test_metric < central.test_metric - 0.2,
            "naive {} must collapse vs centralized {}",
            naive.test_metric,
            central.test_metric
        );
    }

    #[test]
    #[should_panic]
    fn lpgnn_rejects_unsupervised() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let _ = run_lpgnn(&ds, &cfg(TaskKind::Unsupervised), &LpgnnParams::default());
    }

    #[test]
    fn noised_adjacency_buries_the_topology() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let edges: Vec<(u32, u32)> = (0..100).map(|i| (i as u32, (i + 1) as u32)).collect();
        let params = NaiveFedParams::default();
        let noised = noise_adjacency(200, &edges, &params, &mut rng);
        // RR at ε=1 flips ~26.9% of the ~19,800 non-edges: ~5,330 spurious,
        // capped at 40 × 100 = 4,000. True edges: ~73 survive.
        assert!(
            noised.len() > 3_500,
            "noise must dominate: {} edges",
            noised.len()
        );
        assert!(noised.len() < 4_200, "cap must bind: {}", noised.len());
    }
}
