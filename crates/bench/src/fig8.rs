//! Figure 8: system performance contribution of tree trimming —
//! (a) average inter-device communication rounds per device per epoch,
//! (b) average training time per epoch.

use lumos_common::table::{fmt2, Table};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;

use crate::args::HarnessArgs;
use crate::presets::{mcmc_iterations_for, run_pair};

/// One (dataset, task) cost comparison.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: String,
    /// Task.
    pub task: TaskKind,
    /// Avg messages/device/epoch with trimming.
    pub comm_trimmed: f64,
    /// Avg messages/device/epoch without trimming.
    pub comm_untrimmed: f64,
    /// Avg epoch wall seconds with trimming.
    pub time_trimmed: f64,
    /// Avg epoch wall seconds without trimming.
    pub time_untrimmed: f64,
    /// Avg modeled makespan with trimming.
    pub makespan_trimmed: f64,
    /// Avg modeled makespan without trimming.
    pub makespan_untrimmed: f64,
}

/// Epochs used for cost measurement: communication and per-epoch time do
/// not depend on convergence, so a short run suffices.
const COST_EPOCHS: usize = 10;

fn eval_dataset(ds: &Dataset, args: &HarnessArgs) -> Vec<Fig8Row> {
    let mcmc = mcmc_iterations_for(args.scale, &ds.name);
    [TaskKind::Supervised, TaskKind::Unsupervised]
        .into_iter()
        .map(|task| {
            let base = LumosConfig::new(Backbone::Gcn, task)
                .with_epochs(COST_EPOCHS)
                .with_mcmc_iterations(mcmc)
                .with_seed(args.seed);
            let trimmed = run_lumos(ds, &base);
            let untrimmed = run_lumos(ds, &base.clone().without_tree_trimming());
            Fig8Row {
                dataset: ds.name.clone(),
                task,
                comm_trimmed: trimmed.avg_messages_per_device_per_epoch,
                comm_untrimmed: untrimmed.avg_messages_per_device_per_epoch,
                time_trimmed: trimmed.avg_epoch_secs,
                time_untrimmed: untrimmed.avg_epoch_secs,
                makespan_trimmed: trimmed.avg_epoch_makespan,
                makespan_untrimmed: untrimmed.avg_epoch_makespan,
            }
        })
        .collect()
}

/// Runs the Figure 8 experiment.
pub fn run(args: &HarnessArgs) -> Vec<Fig8Row> {
    let ds = crate::presets::datasets(args.scale);
    let (fb, lfm) = (&ds[0], &ds[1]);
    let (a, b) = run_pair(|| eval_dataset(fb, args), || eval_dataset(lfm, args));
    a.into_iter().chain(b).collect()
}

/// Renders both panels plus the straggler makespan and saving percentages
/// (the paper: 27–43% fewer communication rounds, 10–36% less time).
pub fn table(rows: &[Fig8Row]) -> Table {
    let mut t = Table::new(
        "Figure 8: system cost with (Lumos) vs without (w.o. TT) trimming",
        &[
            "dataset",
            "task",
            "msgs/dev/epoch",
            "msgs w.o. TT",
            "saved %",
            "epoch secs",
            "epoch secs w.o. TT",
            "saved %",
            "makespan",
            "makespan w.o. TT",
            "saved %",
        ],
    );
    let pct = |a: f64, b: f64| {
        if b == 0.0 {
            "n/a".to_string()
        } else {
            fmt2((b - a) / b * 100.0)
        }
    };
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.task.name().to_string(),
            fmt2(r.comm_trimmed),
            fmt2(r.comm_untrimmed),
            pct(r.comm_trimmed, r.comm_untrimmed),
            format!("{:.4}", r.time_trimmed),
            format!("{:.4}", r.time_untrimmed),
            pct(r.time_trimmed, r.time_untrimmed),
            fmt2(r.makespan_trimmed),
            fmt2(r.makespan_untrimmed),
            pct(r.makespan_trimmed, r.makespan_untrimmed),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    #[test]
    fn trimming_saves_communication_and_makespan() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 8,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let ds = lumos_data::Dataset::facebook_like(Scale::Smoke);
        let rows = eval_dataset(&ds, &args);
        for r in &rows {
            assert!(
                r.comm_trimmed < r.comm_untrimmed,
                "{:?}: comm {} vs {}",
                r.task,
                r.comm_trimmed,
                r.comm_untrimmed
            );
            assert!(
                r.makespan_trimmed < r.makespan_untrimmed,
                "{:?}: makespan {} vs {}",
                r.task,
                r.makespan_trimmed,
                r.makespan_untrimmed
            );
        }
        assert_eq!(table(&rows).len(), 2);
    }
}
