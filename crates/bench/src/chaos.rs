//! Chaos sweep: accuracy, makespan, and recovery counters under seeded
//! fault injection (PR 10).
//!
//! Every row replays the same straggler-tail workload on the hierarchical
//! topology under one fault setting — message-loss and mid-round-crash
//! rates crossed on a small grid, plus one aggregator-outage row — with
//! the default retry/backoff recovery policy. Three claims become
//! measurable and CI-gated:
//!
//! 1. the fault-free row (zero rates, no outage) is **bit-identical** to
//!    the no-fault baseline (`baseline_match`);
//! 2. under 10% message loss the recovery layer retries (`retries > 0`)
//!    and never discards an update (`wasted_updates == 0` — exhausted
//!    sends degrade into the staleness buffer);
//! 3. the outage row re-homes its shard to the deterministic successor
//!    (`failovers > 0`) without touching the training math.
//!
//! [`to_json`] renders the sweep as the machine-readable
//! `BENCH_chaos.json` record the CI smoke gate parses.

use lumos_common::table::{fmt2, Table};
use lumos_core::{run_lumos, LumosConfig, RunReport, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;
use lumos_sim::{FaultSpec, OutageWindow, Scenario};
use lumos_topo::TopologyConfig;

use crate::args::HarnessArgs;
use crate::presets::{mcmc_iterations_for, run_pair};

/// Aggregator fan-in of the sweep's hierarchical topology.
pub const AGGREGATORS: usize = 4;

/// The loss × crash grid every scenario sweeps (rates as probabilities).
pub const FAULT_GRID: [(f64, f64); 4] = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.05), (0.1, 0.05)];

/// The outage row's window: aggregator 1 is dark for rounds 1 and 2.
pub const OUTAGE: OutageWindow = OutageWindow {
    aggregator: 1,
    from_round: 1,
    until_round: 3,
};

/// One fault setting's outcome: what the fleet learned, what it cost, and
/// what the recovery layer did about the injected faults.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Dataset name.
    pub dataset: String,
    /// Device scenario.
    pub scenario: Scenario,
    /// Per-attempt message-loss probability injected this row.
    pub loss_rate: f64,
    /// Per-device-round mid-round crash probability injected this row.
    pub crash_rate: f64,
    /// Whether this row injects the aggregator outage window ([`OUTAGE`]).
    pub outage: bool,
    /// Test accuracy the run converged to.
    pub accuracy: f64,
    /// Simulated seconds per epoch (backoff waits included).
    pub makespan: f64,
    /// Upload attempts the network lost (initial sends and retries).
    pub lost_messages: u64,
    /// Re-sends the recovery policy scheduled.
    pub retries: u64,
    /// Simulated seconds spent waiting out backoff before re-sends.
    pub retry_secs: f64,
    /// Device-rounds lost to injected mid-round crashes.
    pub crashed_devices: u64,
    /// Shard-rounds served by a failover successor during the outage.
    pub failovers: u64,
    /// Updates banked in the staleness buffer (exhausted sends degrade
    /// here instead of vanishing).
    pub buffered_updates: u64,
    /// Updates discarded forever — zero by construction (recovery defers,
    /// never drops), asserted by the CI smoke gate.
    pub wasted_updates: u64,
    /// Whether this row's report is bit-identical to the no-fault
    /// baseline. True exactly on the fault-free row; the CI smoke gate
    /// asserts it.
    pub baseline_match: bool,
}

/// Epochs per measurement: recovery statistics stabilize quickly and do
/// not depend on convergence. Quick mode halves the window for CI smoke.
fn chaos_epochs(quick: bool) -> usize {
    if quick {
        4
    } else {
        8
    }
}

fn base_config(ds: &Dataset, scenario: Scenario, args: &HarnessArgs) -> LumosConfig {
    LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(chaos_epochs(args.quick))
        .with_mcmc_iterations(mcmc_iterations_for(args.scale, &ds.name))
        .with_seed(args.seed)
        .with_scenario(scenario)
        .with_topology(TopologyConfig::Hierarchical {
            aggregators: AGGREGATORS,
        })
}

/// Every deterministic field of the two reports, bitwise — the
/// `baseline_match` predicate.
fn reports_identical(a: &RunReport, b: &RunReport) -> bool {
    a.test_metric.to_bits() == b.test_metric.to_bits()
        && a.final_loss().to_bits() == b.final_loss().to_bits()
        && a.avg_messages_per_device_per_epoch.to_bits()
            == b.avg_messages_per_device_per_epoch.to_bits()
        && a.sim == b.sim
}

fn eval_row(
    ds: &Dataset,
    scenario: Scenario,
    loss_rate: f64,
    crash_rate: f64,
    outage: bool,
    baseline: &RunReport,
    args: &HarnessArgs,
) -> ChaosRow {
    let outages = if outage { vec![OUTAGE] } else { vec![] };
    let cfg = base_config(ds, scenario, args).with_faults(FaultSpec::Faults {
        crash_rate,
        loss_rate,
        duplicate_rate: 0.0,
        outages,
    });
    let report = run_lumos(ds, &cfg);
    let baseline_match = reports_identical(baseline, &report);
    let sim = report
        .sim
        .expect("scenario configs always produce a sim summary");
    ChaosRow {
        dataset: ds.name.clone(),
        scenario,
        loss_rate,
        crash_rate,
        outage,
        accuracy: report.test_metric,
        makespan: sim.avg_epoch_virtual_secs,
        lost_messages: sim.lost_messages,
        retries: sim.retries,
        retry_secs: sim.retry_secs,
        crashed_devices: sim.crashed_devices,
        failovers: sim.failovers,
        buffered_updates: sim.buffered_updates,
        wasted_updates: sim.wasted_updates,
        baseline_match,
    }
}

fn eval_scenario(ds: &Dataset, scenario: Scenario, args: &HarnessArgs) -> Vec<ChaosRow> {
    // The no-fault baseline every row's `baseline_match` compares against:
    // the exact seed path, `FaultSpec::None`.
    let baseline = run_lumos(ds, &base_config(ds, scenario, args));
    let mut rows = Vec::with_capacity(FAULT_GRID.len() + 1);
    for pair in FAULT_GRID.chunks(2) {
        match *pair {
            [(l, c)] => rows.push(eval_row(ds, scenario, l, c, false, &baseline, args)),
            [(l0, c0), (l1, c1)] => {
                let (a, b) = run_pair(
                    || eval_row(ds, scenario, l0, c0, false, &baseline, args),
                    || eval_row(ds, scenario, l1, c1, false, &baseline, args),
                );
                rows.push(a);
                rows.push(b);
            }
            _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
        }
    }
    rows.push(eval_row(ds, scenario, 0.0, 0.0, true, &baseline, args));
    rows
}

/// Runs the chaos sweep on the primary dataset. Quick mode restricts the
/// sweep to the straggler tail (the fleet the CI smoke gate asserts on);
/// full mode adds churn, where injected faults compound natural absence.
pub fn run(args: &HarnessArgs) -> Vec<ChaosRow> {
    let ds = Dataset::facebook_like(args.scale);
    let scenarios: &[Scenario] = if args.quick {
        &[Scenario::StragglerTail]
    } else {
        &[Scenario::StragglerTail, Scenario::Churn]
    };
    scenarios
        .iter()
        .flat_map(|&s| eval_scenario(&ds, s, args))
        .collect()
}

/// Renders the sweep as one table row per fault setting.
pub fn table(rows: &[ChaosRow]) -> Table {
    let mut t = Table::new(
        "Chaos sweep: accuracy × makespan × recovery counters under seeded fault injection",
        &[
            "dataset",
            "scenario",
            "loss",
            "crash",
            "outage",
            "accuracy",
            "epoch secs",
            "lost",
            "retries",
            "retry secs",
            "crashed",
            "failovers",
            "buffered",
            "wasted",
            "baseline match",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.scenario.name().to_string(),
            fmt2(r.loss_rate),
            fmt2(r.crash_rate),
            r.outage.to_string(),
            fmt2(r.accuracy),
            fmt2(r.makespan),
            r.lost_messages.to_string(),
            r.retries.to_string(),
            fmt2(r.retry_secs),
            r.crashed_devices.to_string(),
            r.failovers.to_string(),
            r.buffered_updates.to_string(),
            r.wasted_updates.to_string(),
            r.baseline_match.to_string(),
        ]);
    }
    t
}

/// A finite `f64` as a JSON number (`null` for NaN/∞, which JSON lacks).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A string as a JSON string literal (names here are ASCII identifiers;
/// escape the two characters that could break the quoting anyway).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders the sweep as the machine-readable `BENCH_chaos.json` document
/// the CI smoke gate parses: one record per fault setting with the
/// injected rates, the learning outcome, and every recovery counter,
/// keyed by scale and seed so chaos runs can be diffed run to run.
pub fn to_json(rows: &[ChaosRow], args: &HarnessArgs) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"chaos_sweep\",\n");
    out.push_str(&format!("  \"scale\": {},\n", json_str(args.scale.name())));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"quick\": {},\n", args.quick));
    out.push_str("  \"rows\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"dataset\": {},\n",
                    "      \"scenario\": {},\n",
                    "      \"loss_rate\": {},\n",
                    "      \"crash_rate\": {},\n",
                    "      \"outage\": {},\n",
                    "      \"accuracy\": {},\n",
                    "      \"makespan\": {},\n",
                    "      \"lost_messages\": {},\n",
                    "      \"retries\": {},\n",
                    "      \"retry_secs\": {},\n",
                    "      \"crashed_devices\": {},\n",
                    "      \"failovers\": {},\n",
                    "      \"buffered_updates\": {},\n",
                    "      \"wasted_updates\": {},\n",
                    "      \"baseline_match\": {}\n",
                    "    }}"
                ),
                json_str(&r.dataset),
                json_str(r.scenario.name()),
                json_num(r.loss_rate),
                json_num(r.crash_rate),
                r.outage,
                json_num(r.accuracy),
                json_num(r.makespan),
                r.lost_messages,
                r.retries,
                json_num(r.retry_secs),
                r.crashed_devices,
                r.failovers,
                r.buffered_updates,
                r.wasted_updates,
                r.baseline_match,
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    fn smoke_args() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Smoke,
            seed: 8,
            quick: true,
            json: None,
            sensitivity: false,
        }
    }

    #[test]
    fn quick_sweep_carries_the_three_gated_claims() {
        let args = smoke_args();
        let rows = run(&args);
        // Quick mode: the 2×2 grid plus the outage row, straggler tail only.
        assert_eq!(rows.len(), FAULT_GRID.len() + 1);
        // Claim 1: the fault-free row reproduces the baseline bit for bit —
        // and it is the only row that does.
        for r in &rows {
            let fault_free = r.loss_rate == 0.0 && r.crash_rate == 0.0 && !r.outage;
            assert_eq!(
                r.baseline_match, fault_free,
                "baseline_match must hold exactly on the fault-free row: {r:?}"
            );
        }
        // Claim 2: under 10% loss the recovery layer retries and never
        // discards an update.
        for r in rows.iter().filter(|r| r.loss_rate > 0.0) {
            assert!(r.lost_messages > 0, "injected loss must fire: {r:?}");
            assert!(r.retries > 0, "lost sends must be retried: {r:?}");
            assert!(r.retry_secs > 0.0, "backoff waits must be priced: {r:?}");
            assert_eq!(r.wasted_updates, 0, "recovery never discards: {r:?}");
        }
        // Claim 3: the outage row re-homes its shard without touching the
        // training math (same accuracy as the fault-free row).
        let outage = rows.iter().find(|r| r.outage).expect("outage row");
        let calm = rows
            .iter()
            .find(|r| r.baseline_match)
            .expect("fault-free row");
        assert_eq!(outage.failovers, 2, "one re-homed shard, rounds 1 and 2");
        assert_eq!(outage.accuracy.to_bits(), calm.accuracy.to_bits());
        // Crash rows must record their device-rounds.
        assert!(
            rows.iter()
                .any(|r| r.crash_rate > 0.0 && r.crashed_devices > 0),
            "5% crash over the fleet should fire at least once"
        );
        assert_eq!(table(&rows).len(), rows.len());
    }

    #[test]
    fn json_document_is_well_formed() {
        let args = smoke_args();
        let rows = vec![ChaosRow {
            dataset: "facebook-smoke".into(),
            scenario: Scenario::StragglerTail,
            loss_rate: 0.1,
            crash_rate: 0.05,
            outage: false,
            accuracy: 0.61,
            makespan: 12.75,
            lost_messages: 40,
            retries: 37,
            retry_secs: 18.5,
            crashed_devices: 3,
            failovers: 0,
            buffered_updates: 9,
            wasted_updates: 0,
            baseline_match: false,
        }];
        let json = to_json(&rows, &args);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"chaos_sweep\""));
        assert!(json.contains("\"scenario\": \"straggler-tail\""));
        assert!(json.contains("\"loss_rate\": 0.1"));
        assert!(json.contains("\"crash_rate\": 0.05"));
        assert!(json.contains("\"outage\": false"));
        assert!(json.contains("\"lost_messages\": 40"));
        assert!(json.contains("\"retries\": 37"));
        assert!(json.contains("\"retry_secs\": 18.5"));
        assert!(json.contains("\"crashed_devices\": 3"));
        assert!(json.contains("\"failovers\": 0"));
        assert!(json.contains("\"wasted_updates\": 0"));
        assert!(json.contains("\"baseline_match\": false"));
        assert!(json.ends_with("}\n"));
    }
}
