//! Perf trajectory: scalar vs bit-sliced secure-comparison throughput.
//!
//! Two wall-clock measurements, both under the *real* simulated OT
//! circuits (`SecurityMode::Simulated` — the cost-model oracles are nearly
//! free and would measure nothing):
//!
//! 1. **Batched comparison throughput** on the 48-bit weighted-workload
//!    lane ([`lumos_balance::WEIGHTED_WORKLOAD_BITS`]): mean ns per
//!    comparison for a large independent sweep, per backend.
//! 2. **MCMC iteration rate**: full Algorithm-2 iterations per second on a
//!    cost-weighted graph (so every comparison rides the 48-bit lane), per
//!    backend.
//!
//! [`to_json`] renders the machine-readable `BENCH_perf.json` record that
//! CI smoke-parses to assert the bit-sliced win holds (≥10× on the batched
//! sweep); keeping it in a dated artifact is what finally gives the repo a
//! recorded perf trajectory instead of anecdotes.

use std::time::Instant;

use lumos_balance::{
    greedy_init_weighted, make_oracle_backend, mcmc_balance, CompareBackend, McmcConfig,
    SecurityMode, WEIGHTED_WORKLOAD_BITS,
};
use lumos_common::rng::Xoshiro256pp;
use lumos_common::table::{fmt2, Table};
use lumos_graph::generate::erdos_renyi;

use crate::args::HarnessArgs;

/// Results of one scalar-vs-bitsliced measurement pass.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Comparison bit width (the 48-bit weighted-workload lane).
    pub bits: u32,
    /// Independent pairs per batched sweep.
    pub batch_lanes: usize,
    /// Mean ns per comparison, scalar backend.
    pub scalar_ns_per_cmp: f64,
    /// Mean ns per comparison, bit-sliced backend.
    pub bitsliced_ns_per_cmp: f64,
    /// OT-traffic messages per sweep, scalar backend.
    pub scalar_messages: u64,
    /// OT-traffic messages per sweep, bit-sliced backend.
    pub bitsliced_messages: u64,
    /// MCMC iterations per second, scalar backend.
    pub mcmc_scalar_iters_per_sec: f64,
    /// MCMC iterations per second, bit-sliced backend.
    pub mcmc_bitsliced_iters_per_sec: f64,
    /// MCMC iterations measured per backend.
    pub mcmc_iterations: usize,
}

impl PerfReport {
    /// Wall-clock speedup of the batched sweep (scalar / bitsliced).
    pub fn compare_speedup(&self) -> f64 {
        self.scalar_ns_per_cmp / self.bitsliced_ns_per_cmp
    }

    /// Wire-message ratio of the batched sweep (scalar / bitsliced).
    pub fn message_ratio(&self) -> f64 {
        self.scalar_messages as f64 / self.bitsliced_messages as f64
    }

    /// Wall-clock speedup of MCMC iterations (bitsliced / scalar rate).
    pub fn mcmc_speedup(&self) -> f64 {
        self.mcmc_bitsliced_iters_per_sec / self.mcmc_scalar_iters_per_sec
    }
}

/// Times one batched 48-bit sweep per backend and one secure MCMC run per
/// backend, and checks on the way that the two backends agree bit for bit
/// on every outcome (panicking loudly otherwise — a perf record measured
/// on divergent engines would be meaningless).
pub fn run(args: &HarnessArgs) -> PerfReport {
    let bits = WEIGHTED_WORKLOAD_BITS;
    let lanes = if args.quick { 1024 } else { 4096 };
    let reps = if args.quick { 3 } else { 5 };
    let mut rng = Xoshiro256pp::seed_from_u64(args.seed);
    let pairs: Vec<(u64, u64)> = (0..lanes)
        .map(|_| (rng.next_below(1 << bits), rng.next_below(1 << bits)))
        .collect();

    let time_backend = |backend: CompareBackend| {
        let mut oracle = make_oracle_backend(SecurityMode::Simulated, backend, args.seed);
        // Warm-up pass (page-in, dealer state) before the timed reps.
        let warmup = oracle.compare_batch(&pairs, bits);
        let baseline = oracle.meter();
        #[allow(clippy::disallowed_methods)] // mirrored lumos-lint waiver
        let start = Instant::now(); // lumos-lint: allow(wallclock-time) — benchmark throughput meter; timings go to BENCH_perf.json, not into any report the determinism tests pin
        for _ in 0..reps {
            std::hint::black_box(oracle.compare_batch(&pairs, bits));
        }
        let elapsed = start.elapsed().as_secs_f64();
        let per_sweep = oracle.meter().since(&baseline).messages / reps as u64;
        (elapsed * 1e9 / (reps * lanes) as f64, per_sweep, warmup)
    };
    let (scalar_ns, scalar_msgs, scalar_outs) = time_backend(CompareBackend::Scalar);
    let (sliced_ns, sliced_msgs, sliced_outs) = time_backend(CompareBackend::Bitsliced);
    assert_eq!(
        scalar_outs, sliced_outs,
        "backends must agree lane for lane"
    );

    // MCMC iteration rate under the real circuits, cost-weighted so every
    // comparison runs on the wide lane.
    let mcmc_iters = if args.quick { 8 } else { 20 };
    let mut grng = Xoshiro256pp::seed_from_u64(args.seed ^ 0xD1CE);
    let g = erdos_renyi(48, 0.12, &mut grng);
    let costs: Vec<u64> = (0..g.num_nodes())
        .map(|_| grng.range_u64(1, 1000))
        .collect();
    // Best-of-N passes per backend: a single wall-clock sample on a shared
    // CI runner is one noisy-neighbor spike away from a spurious failure;
    // the fastest pass is the least-perturbed estimate of each engine.
    let mcmc_passes = if args.quick { 2 } else { 3 };
    let mcmc_rate = |backend: CompareBackend| {
        let mut best_rate = 0.0f64;
        let mut last = None;
        for _ in 0..mcmc_passes {
            let mut oracle = make_oracle_backend(SecurityMode::Simulated, backend, args.seed);
            let init = greedy_init_weighted(&g, Some(&costs), oracle.as_mut());
            let cfg = McmcConfig {
                iterations: mcmc_iters,
                seed: args.seed ^ 0x5EED,
            };
            #[allow(clippy::disallowed_methods)] // mirrored lumos-lint waiver
            let start = Instant::now(); // lumos-lint: allow(wallclock-time) — benchmark iteration-rate meter, output only
            let out = mcmc_balance(&g, init, &cfg, oracle.as_mut());
            best_rate = best_rate.max(mcmc_iters as f64 / start.elapsed().as_secs_f64());
            last = Some(out);
        }
        (best_rate, last.expect("at least one pass"))
    };
    let (scalar_rate, scalar_chain) = mcmc_rate(CompareBackend::Scalar);
    let (sliced_rate, sliced_chain) = mcmc_rate(CompareBackend::Bitsliced);
    assert_eq!(
        scalar_chain.assignment, sliced_chain.assignment,
        "backends must drive the chain to the same state"
    );

    PerfReport {
        bits,
        batch_lanes: lanes,
        scalar_ns_per_cmp: scalar_ns,
        bitsliced_ns_per_cmp: sliced_ns,
        scalar_messages: scalar_msgs,
        bitsliced_messages: sliced_msgs,
        mcmc_scalar_iters_per_sec: scalar_rate,
        mcmc_bitsliced_iters_per_sec: sliced_rate,
        mcmc_iterations: mcmc_iters,
    }
}

/// Renders the report as a human-readable markdown table.
pub fn table(r: &PerfReport) -> Table {
    let mut t = Table::new(
        "Secure-comparison backends: scalar vs bit-sliced (real OT circuits)",
        &["metric", "scalar", "bitsliced", "ratio"],
    );
    t.row(&[
        format!("ns / {}-bit comparison (batch {})", r.bits, r.batch_lanes),
        fmt2(r.scalar_ns_per_cmp),
        fmt2(r.bitsliced_ns_per_cmp),
        format!("{}x", fmt2(r.compare_speedup())),
    ]);
    t.row(&[
        "OT messages / sweep".into(),
        r.scalar_messages.to_string(),
        r.bitsliced_messages.to_string(),
        format!("{}x", fmt2(r.message_ratio())),
    ]);
    t.row(&[
        format!("MCMC iters / s ({} iters)", r.mcmc_iterations),
        fmt2(r.mcmc_scalar_iters_per_sec),
        fmt2(r.mcmc_bitsliced_iters_per_sec),
        format!("{}x", fmt2(r.mcmc_speedup())),
    ]);
    t
}

/// The machine-readable `BENCH_perf.json` record CI smoke-parses.
pub fn to_json(r: &PerfReport, args: &HarnessArgs) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf_compare\",\n",
            "  \"seed\": {seed},\n",
            "  \"quick\": {quick},\n",
            "  \"bits\": {bits},\n",
            "  \"batch_lanes\": {lanes},\n",
            "  \"compare\": {{\n",
            "    \"scalar_ns\": {sns},\n",
            "    \"bitsliced_ns\": {bns},\n",
            "    \"speedup\": {spd},\n",
            "    \"scalar_messages\": {sm},\n",
            "    \"bitsliced_messages\": {bm},\n",
            "    \"message_ratio\": {mr}\n",
            "  }},\n",
            "  \"mcmc\": {{\n",
            "    \"iterations\": {mi},\n",
            "    \"scalar_iters_per_sec\": {sr},\n",
            "    \"bitsliced_iters_per_sec\": {br},\n",
            "    \"speedup\": {ms}\n",
            "  }}\n",
            "}}\n",
        ),
        seed = args.seed,
        quick = args.quick,
        bits = r.bits,
        lanes = r.batch_lanes,
        sns = r.scalar_ns_per_cmp,
        bns = r.bitsliced_ns_per_cmp,
        spd = r.compare_speedup(),
        sm = r.scalar_messages,
        bm = r.bitsliced_messages,
        mr = r.message_ratio(),
        mi = r.mcmc_iterations,
        sr = r.mcmc_scalar_iters_per_sec,
        br = r.mcmc_bitsliced_iters_per_sec,
        ms = r.mcmc_speedup(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    #[test]
    fn quick_run_reports_deterministic_facts_and_renders() {
        // Only deterministic properties are asserted here: wall-clock
        // thresholds in a debug-mode unit test sharing the host with the
        // rest of the suite would be a flake factory. The hard ≥10×/≥1.5×
        // wall-clock gates live in CI's release-mode perf_compare step.
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 7,
            quick: true,
            json: None,
            sensitivity: false,
        };
        let r = run(&args);
        assert!(r.scalar_ns_per_cmp > 0.0 && r.bitsliced_ns_per_cmp > 0.0);
        assert!(r.mcmc_scalar_iters_per_sec > 0.0 && r.mcmc_bitsliced_iters_per_sec > 0.0);
        assert!(
            r.message_ratio() > 40.0,
            "message ratio {:.1} must approach the 64-lane packing",
            r.message_ratio()
        );
        let json = to_json(&r, &args);
        assert!(json.contains("\"bench\": \"perf_compare\""));
        assert!(json.contains("\"speedup\""));
        // Table renders without panicking.
        let _ = table(&r);
    }
}
