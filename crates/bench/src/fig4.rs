//! Figure 4: unsupervised link-prediction ROC-AUC — Lumos vs centralized
//! GNN vs naive FedGNN (LPGNN is supervised-only, §VIII-C).

use lumos_baselines::{run_centralized, run_naive_fedgnn, BaselineConfig, NaiveFedParams};
use lumos_common::table::{fmt4, Table};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;

use crate::args::HarnessArgs;
use crate::presets::{datasets, epochs_for, mcmc_iterations_for, run_pair};

/// One result row of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Dataset name.
    pub dataset: String,
    /// Backbone name.
    pub backbone: String,
    /// Lumos AUC.
    pub lumos: f64,
    /// Centralized AUC.
    pub centralized: f64,
    /// Naive FedGNN AUC.
    pub naive: f64,
}

fn eval_dataset(ds: &Dataset, args: &HarnessArgs) -> Vec<Fig4Row> {
    let task = TaskKind::Unsupervised;
    let epochs = epochs_for(args.scale, task, args.quick);
    let mcmc = mcmc_iterations_for(args.scale, &ds.name);
    [Backbone::Gcn, Backbone::Gat]
        .into_iter()
        .map(|backbone| {
            let lumos_cfg = LumosConfig::new(backbone, task)
                .with_epochs(epochs)
                .with_mcmc_iterations(mcmc)
                .with_seed(args.seed);
            let base_cfg = BaselineConfig::new(backbone, task)
                .with_epochs(epochs)
                .with_seed(args.seed);
            Fig4Row {
                dataset: ds.name.clone(),
                backbone: backbone.name().into(),
                lumos: run_lumos(ds, &lumos_cfg).test_metric,
                centralized: run_centralized(ds, &base_cfg).test_metric,
                naive: run_naive_fedgnn(ds, &base_cfg, &NaiveFedParams::default()).test_metric,
            }
        })
        .collect()
}

/// Runs the Figure 4 experiment.
pub fn run(args: &HarnessArgs) -> Vec<Fig4Row> {
    let ds = datasets(args.scale);
    let (fb, lfm) = (&ds[0], &ds[1]);
    let (a, b) = run_pair(|| eval_dataset(fb, args), || eval_dataset(lfm, args));
    a.into_iter().chain(b).collect()
}

/// Renders the rows.
pub fn table(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(
        "Figure 4: link prediction ROC-AUC",
        &[
            "dataset",
            "backbone",
            "Lumos",
            "Centralized",
            "Naive FedGNN",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.backbone.clone(),
            fmt4(r.lumos),
            fmt4(r.centralized),
            fmt4(r.naive),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    /// At reduced scale the one-bit mechanism's per-element budget
    /// `ε·wl/d` leaves little pairwise signal, so only the weaker shapes
    /// are asserted here: Lumos beats random guessing and the centralized
    /// skyline dominates everything. The Lumos-vs-naive ordering of the
    /// paper's Figure 4 is a paper-scale property (see EXPERIMENTS.md).
    #[test]
    fn fig4_sanity_at_smoke_scale_gcn() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 3,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let ds = lumos_data::Dataset::lastfm_like(Scale::Smoke);
        let rows = eval_dataset(&ds, &args);
        let gcn = rows.iter().find(|r| r.backbone == "GCN").unwrap();
        assert!(gcn.lumos > 0.52, "lumos {} must beat random", gcn.lumos);
        assert!(gcn.centralized > 0.7);
        assert!(
            gcn.centralized > gcn.lumos && gcn.centralized > gcn.naive,
            "centralized must dominate: {} vs {}/{}",
            gcn.centralized,
            gcn.lumos,
            gcn.naive
        );
        assert_eq!(table(&rows).len(), 2);
    }
}
