//! Regenerates Figure 8 (communication rounds and training time).
use lumos_bench::{fig8, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    fig8::table(&fig8::run(&args)).print();
}
