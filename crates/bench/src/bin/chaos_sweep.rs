//! Chaos sweep: accuracy, makespan, and recovery counters under seeded
//! fault injection — a message-loss × crash-rate grid plus one
//! aggregator-outage row on the hierarchical straggler-tail fleet (full
//! mode adds churn). Also writes the machine-readable `BENCH_chaos.json`
//! record the CI smoke gate parses (`--json PATH` to relocate).
use lumos_bench::{chaos, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = chaos::run(&args);
    chaos::table(&rows).print();
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_chaos.json".into());
    let json = chaos::to_json(&rows, &args);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
