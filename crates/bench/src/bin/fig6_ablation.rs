//! Regenerates Figure 6 (ablation study).
use lumos_bench::{fig6, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    fig6::table(&fig6::run(&args)).print();
}
