//! Scenario sweep: simulated epoch makespan across heterogeneous-device
//! fleets — trimmed under both balance objectives (tree nodes vs virtual
//! seconds), under the deadline / buffered / async aggregation policies,
//! and untrimmed (Figure 8 extension). `--sensitivity` adds the buffered
//! policy's decay × re-balance-trigger grid. Also writes the
//! machine-readable `BENCH_fig8.json` record (`--json PATH` to relocate).
use lumos_bench::{hetero, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = hetero::run(&args);
    hetero::table(&rows).print();
    let sensitivity = if args.sensitivity {
        let grid = hetero::run_sensitivity(&args);
        println!();
        hetero::sensitivity_table(&grid).print();
        grid
    } else {
        Vec::new()
    };
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_fig8.json".into());
    let json = hetero::to_json(&rows, &sensitivity, &args);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
