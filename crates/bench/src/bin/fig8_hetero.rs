//! Scenario sweep: simulated epoch makespan across heterogeneous-device
//! fleets, with vs without tree trimming (Figure 8 extension).
use lumos_bench::{hetero, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    hetero::table(&hetero::run(&args)).print();
}
