//! Perf trajectory: scalar vs bit-sliced comparison backends under the
//! real OT circuits — mean ns per 48-bit comparison and MCMC iterations
//! per second. Writes the machine-readable `BENCH_perf.json` record
//! (`--json PATH` to relocate) that CI asserts the bit-sliced win on.
use lumos_bench::{perf, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let report = perf::run(&args);
    perf::table(&report).print();
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_perf.json".into());
    let json = perf::to_json(&report, &args);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
