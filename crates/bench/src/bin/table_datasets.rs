//! Regenerates the §VIII-A dataset table.
use lumos_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    lumos_bench::table1::run(args.scale).print();
}
