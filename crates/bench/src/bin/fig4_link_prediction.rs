//! Regenerates Figure 4 (link-prediction ROC-AUC).
use lumos_bench::{fig4, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    fig4::table(&fig4::run(&args)).print();
}
