//! Regenerates Figure 7 (workload CDFs).
use lumos_bench::{fig7, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    fig7::table(&fig7::run(&args)).print();
}
