//! Scale sweep: flat vs hierarchical aggregation at 4k / 32k / 100k
//! devices — simulated epoch makespan, server bytes per round, peak
//! ledger entries, and wall µs per simulated device. Writes the
//! machine-readable `BENCH_scale.json` record (`--json PATH` to
//! relocate) that CI asserts the O(aggregators) server traffic on.
use lumos_bench::{scale, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = scale::run(&args);
    scale::table(&rows).print();
    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_scale.json".into());
    let json = scale::to_json(&rows, &args);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
