//! Regenerates Figure 5 (privacy-parameter sensitivity).
use lumos_bench::{fig5, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    fig5::table(&fig5::run(&args)).print();
}
