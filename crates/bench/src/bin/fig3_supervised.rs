//! Regenerates Figure 3 (supervised classification accuracy).
use lumos_bench::{fig3, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let rows = fig3::run(&args);
    fig3::table(&rows).print();
    fig3::summary(&rows).print();
}
