//! Runs every table/figure reproduction in sequence and prints the paper's
//! headline claims computed from the measured results.
use lumos_bench::{fig3, fig4, fig5, fig6, fig7, fig8, table1, HarnessArgs};
use lumos_common::table::{fmt2, Table};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Lumos reproduction — full experiment suite ({:?})\n",
        args.scale
    );

    table1::run(args.scale).print();
    fig7::table(&fig7::run(&args)).print();
    let f8 = fig8::run(&args);
    fig8::table(&f8).print();
    let f3 = fig3::run(&args);
    fig3::table(&f3).print();
    fig3::summary(&f3).print();
    let f4 = fig4::run(&args);
    fig4::table(&f4).print();
    fig5::table(&fig5::run(&args)).print();
    fig6::table(&fig6::run(&args)).print();

    // Headline claims (abstract): accuracy increase vs the federated
    // baseline, communication-round and training-time savings.
    let acc_gain: f64 = f3
        .iter()
        .map(|r| (r.lumos - r.naive) / r.naive * 100.0)
        .sum::<f64>()
        / f3.len() as f64;
    let comm_saved: f64 = f8
        .iter()
        .map(|r| (r.comm_untrimmed - r.comm_trimmed) / r.comm_untrimmed * 100.0)
        .sum::<f64>()
        / f8.len() as f64;
    let time_saved: f64 = f8
        .iter()
        .map(|r| (r.time_untrimmed - r.time_trimmed) / r.time_untrimmed.max(1e-12) * 100.0)
        .sum::<f64>()
        / f8.len() as f64;
    let mut t = Table::new(
        "Headline claims (paper abstract: +39.48% accuracy, −35.16% comm, −17.74% time)",
        &["claim", "paper", "measured"],
    );
    t.push_row([
        "accuracy increase vs naive FedGNN (%)",
        "39.48",
        &fmt2(acc_gain),
    ]);
    t.push_row([
        "inter-device communication saved (%)",
        "35.16",
        &fmt2(comm_saved),
    ]);
    t.push_row(["training time saved (%)", "17.74", &fmt2(time_saved)]);
    t.print();
}
