//! Figure 3: supervised node-classification accuracy — Lumos vs centralized
//! GNN vs LPGNN vs naive FedGNN, for GCN and GAT on both datasets.

use lumos_baselines::{
    run_centralized, run_lpgnn, run_naive_fedgnn, BaselineConfig, LpgnnParams, NaiveFedParams,
};
use lumos_common::table::{fmt2, Table};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;

use crate::args::HarnessArgs;
use crate::presets::{datasets, epochs_for, mcmc_iterations_for, run_pair};

/// One result row of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Dataset name.
    pub dataset: String,
    /// Backbone name.
    pub backbone: String,
    /// Accuracy per system.
    pub lumos: f64,
    /// Centralized accuracy.
    pub centralized: f64,
    /// LPGNN accuracy.
    pub lpgnn: f64,
    /// Naive FedGNN accuracy.
    pub naive: f64,
}

fn eval_dataset(ds: &Dataset, args: &HarnessArgs) -> Vec<Fig3Row> {
    let task = TaskKind::Supervised;
    let epochs = epochs_for(args.scale, task, args.quick);
    let mcmc = mcmc_iterations_for(args.scale, &ds.name);
    [Backbone::Gcn, Backbone::Gat]
        .into_iter()
        .map(|backbone| {
            let lumos_cfg = LumosConfig::new(backbone, task)
                .with_epochs(epochs)
                .with_mcmc_iterations(mcmc)
                .with_seed(args.seed);
            let base_cfg = BaselineConfig::new(backbone, task)
                .with_epochs(epochs)
                .with_seed(args.seed);
            let lumos = run_lumos(ds, &lumos_cfg).test_metric;
            let centralized = run_centralized(ds, &base_cfg).test_metric;
            let lpgnn = run_lpgnn(ds, &base_cfg, &LpgnnParams::default()).test_metric;
            let naive = run_naive_fedgnn(ds, &base_cfg, &NaiveFedParams::default()).test_metric;
            Fig3Row {
                dataset: ds.name.clone(),
                backbone: backbone.name().into(),
                lumos,
                centralized,
                lpgnn,
                naive,
            }
        })
        .collect()
}

/// Runs the Figure 3 experiment, returning the rows.
pub fn run(args: &HarnessArgs) -> Vec<Fig3Row> {
    let ds = datasets(args.scale);
    let (fb, lfm) = (&ds[0], &ds[1]);
    let (a, b) = run_pair(|| eval_dataset(fb, args), || eval_dataset(lfm, args));
    a.into_iter().chain(b).collect()
}

/// Renders the rows as the paper's bar-chart table (accuracy in %).
pub fn table(rows: &[Fig3Row]) -> Table {
    let mut t = Table::new(
        "Figure 3: label classification accuracy (%)",
        &[
            "dataset",
            "backbone",
            "Lumos",
            "Centralized",
            "LPGNN",
            "Naive FedGNN",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.backbone.clone(),
            fmt2(100.0 * r.lumos),
            fmt2(100.0 * r.centralized),
            fmt2(100.0 * r.lpgnn),
            fmt2(100.0 * r.naive),
        ]);
    }
    t
}

/// The paper's headline comparisons computed from the rows.
pub fn summary(rows: &[Fig3Row]) -> Table {
    let mut t = Table::new(
        "Figure 3 follow-ups (paper §VIII-D1 claims)",
        &[
            "dataset",
            "backbone",
            "loss vs centralized (%)",
            "gain vs LPGNN (%)",
            "gain vs naive (%)",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.backbone.clone(),
            fmt2((r.centralized - r.lumos) / r.centralized * 100.0),
            fmt2((r.lumos - r.lpgnn) / r.lpgnn * 100.0),
            fmt2((r.lumos - r.naive) / r.naive * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    /// Smoke-scale end-to-end check of the paper's ordering:
    /// centralized ≥ Lumos > naive, and Lumos ≥ LPGNN - small tolerance.
    #[test]
    fn ordering_holds_at_smoke_scale() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 5,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let rows = run(&args);
        assert_eq!(rows.len(), 4);
        for r in rows.iter().filter(|r| r.backbone == "GCN") {
            assert!(
                r.centralized >= r.lumos,
                "{}: centralized {} vs lumos {}",
                r.dataset,
                r.centralized,
                r.lumos
            );
            assert!(
                r.lumos > r.naive,
                "{}: lumos {} vs naive {}",
                r.dataset,
                r.lumos,
                r.naive
            );
        }
        let t = table(&rows);
        assert_eq!(t.len(), 4);
        let s = summary(&rows);
        assert_eq!(s.len(), 4);
    }
}
