//! Figure 5: sensitivity of the privacy parameter ε ∈ {0.5, 1, 2, 4} on
//! Lumos's accuracy (supervised) and AUC (unsupervised), GCN backbone.

use lumos_common::table::{fmt2, fmt4, Table};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;

use crate::args::HarnessArgs;
use crate::presets::{datasets, epochs_for, mcmc_iterations_for, run_pair};

/// The ε grid of Figure 5.
pub const EPSILONS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// One series: metric per ε for a dataset/task.
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// Dataset name.
    pub dataset: String,
    /// Task.
    pub task: TaskKind,
    /// `(ε, metric)` pairs in grid order.
    pub points: Vec<(f64, f64)>,
}

fn eval_dataset(ds: &Dataset, args: &HarnessArgs) -> Vec<Fig5Series> {
    let mcmc = mcmc_iterations_for(args.scale, &ds.name);
    [TaskKind::Supervised, TaskKind::Unsupervised]
        .into_iter()
        .map(|task| {
            let epochs = epochs_for(args.scale, task, args.quick);
            let points = EPSILONS
                .iter()
                .map(|&eps| {
                    let cfg = LumosConfig::new(Backbone::Gcn, task)
                        .with_epochs(epochs)
                        .with_mcmc_iterations(mcmc)
                        .with_seed(args.seed)
                        .with_epsilon(eps);
                    (eps, run_lumos(ds, &cfg).test_metric)
                })
                .collect();
            Fig5Series {
                dataset: ds.name.clone(),
                task,
                points,
            }
        })
        .collect()
}

/// Runs the Figure 5 sweep.
pub fn run(args: &HarnessArgs) -> Vec<Fig5Series> {
    let ds = datasets(args.scale);
    let (fb, lfm) = (&ds[0], &ds[1]);
    let (a, b) = run_pair(|| eval_dataset(fb, args), || eval_dataset(lfm, args));
    a.into_iter().chain(b).collect()
}

/// Renders both panels of Figure 5.
pub fn table(series: &[Fig5Series]) -> Table {
    let mut t = Table::new(
        "Figure 5: effect of privacy parameter ε (GCN)",
        &["dataset", "task", "ε=0.5", "ε=1", "ε=2", "ε=4"],
    );
    for s in series {
        let fmt: fn(f64) -> String = match s.task {
            TaskKind::Supervised => |x| fmt2(100.0 * x),
            TaskKind::Unsupervised => fmt4,
        };
        t.push_row([
            s.dataset.clone(),
            s.task.name().to_string(),
            fmt(s.points[0].1),
            fmt(s.points[1].1),
            fmt(s.points[2].1),
            fmt(s.points[3].1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    /// At smoke scale, accuracy at ε=4 should beat ε=0.5 (the paper's
    /// monotone trend, within noise).
    #[test]
    fn larger_epsilon_helps_supervised() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 1,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let ds = lumos_data::Dataset::facebook_like(Scale::Smoke);
        let series = eval_dataset(&ds, &args);
        let sup = series
            .iter()
            .find(|s| s.task == TaskKind::Supervised)
            .unwrap();
        let lo = sup.points[0].1;
        let hi = sup.points[3].1;
        assert!(
            hi >= lo - 0.02,
            "ε=4 ({hi}) should not be clearly worse than ε=0.5 ({lo})"
        );
        assert_eq!(table(&series).len(), 2);
    }
}
