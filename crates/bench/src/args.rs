//! Command-line arguments shared by every experiment binary.

use lumos_data::Scale;

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// Quick mode: fewer epochs (for CI-style smoke runs).
    pub quick: bool,
    /// Where to write the machine-readable result record, for binaries
    /// that emit one (`fig8_hetero` → `BENCH_fig8.json` by default).
    pub json: Option<String>,
    /// Also run the buffered-policy sensitivity grid (`fig8_hetero`:
    /// decay × re-balance trigger, accuracy × makespan per cell).
    pub sensitivity: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 2023,
            quick: false,
            json: None,
            sensitivity: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `--scale smoke|small|paper`, `--seed N`, `--quick` from the
    /// process arguments. Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                    out.scale =
                        Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale '{v}'")));
                }
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("bad seed '{v}'")));
                }
                "--quick" => out.quick = true,
                "--sensitivity" => out.sensitivity = true,
                "--json" => {
                    let v = it.next().unwrap_or_else(|| usage("--json needs a path"));
                    if v.starts_with("--") {
                        usage(&format!("--json needs a path, got flag '{v}'"));
                    }
                    out.json = Some(v);
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--scale smoke|small|paper] [--seed N] [--quick] [--json PATH] \
         [--sensitivity]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let d = HarnessArgs::parse_from(Vec::<String>::new());
        assert_eq!(d.scale, Scale::Small);
        assert!(!d.quick);
        assert_eq!(d.json, None);
        assert!(!d.sensitivity);
        let p = HarnessArgs::parse_from(
            [
                "--scale",
                "smoke",
                "--seed",
                "7",
                "--quick",
                "--json",
                "out.json",
                "--sensitivity",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(p.scale, Scale::Smoke);
        assert_eq!(p.seed, 7);
        assert!(p.quick);
        assert_eq!(p.json.as_deref(), Some("out.json"));
        assert!(p.sensitivity);
    }
}
