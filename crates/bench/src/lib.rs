//! `lumos-bench` — the experiment harness.
//!
//! One module per table/figure of the paper's evaluation (§VIII); each has a
//! matching binary in `src/bin/`. All experiments accept `--scale
//! smoke|small|paper` (default `small`), `--seed N`, and print the
//! series/rows the paper reports as markdown tables (plus CSV on request).

#![forbid(unsafe_code)]
pub mod args;
pub mod chaos;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hetero;
pub mod perf;
pub mod presets;
pub mod scale;
pub mod table1;

pub use args::HarnessArgs;
pub use presets::{epochs_for, mcmc_iterations_for};
