//! Figure 7: CDF of per-device workload with and without tree trimming.

use lumos_balance::{CompareBackend, SecurityMode};
use lumos_common::stats::Ecdf;
use lumos_common::table::{fmt2, Table};
use lumos_core::construct_assignment;
use lumos_data::Dataset;

use crate::args::HarnessArgs;
use crate::presets::{datasets, mcmc_iterations_for};

/// Workload distributions for one dataset.
#[derive(Debug)]
pub struct Fig7Result {
    /// Dataset name.
    pub dataset: String,
    /// CDF of trimmed workloads.
    pub trimmed: Ecdf,
    /// CDF of untrimmed workloads (raw degrees).
    pub untrimmed: Ecdf,
}

/// Runs the Figure 7 experiment.
pub fn run(args: &HarnessArgs) -> Vec<Fig7Result> {
    datasets(args.scale)
        .into_iter()
        .map(|ds: Dataset| {
            let mcmc = mcmc_iterations_for(args.scale, &ds.name);
            let (_, trimmed_rep) = construct_assignment(
                &ds.graph,
                true,
                mcmc,
                SecurityMode::CostModel,
                CompareBackend::Scalar,
                args.seed,
                None,
            );
            let (_, full_rep) = construct_assignment(
                &ds.graph,
                false,
                0,
                SecurityMode::CostModel,
                CompareBackend::Scalar,
                args.seed,
                None,
            );
            Fig7Result {
                dataset: ds.name,
                trimmed: Ecdf::new(trimmed_rep.workloads.iter().map(|&w| w as f64).collect()),
                untrimmed: Ecdf::new(full_rep.workloads.iter().map(|&w| w as f64).collect()),
            }
        })
        .collect()
}

/// Renders the CDF series on a shared grid plus the max-workload headline
/// (the paper: Facebook 39 vs >150, LastFM 16 vs >100).
pub fn table(results: &[Fig7Result]) -> Table {
    let mut t = Table::new(
        "Figure 7: workload CDF with/without tree trimming",
        &[
            "dataset",
            "series",
            "max",
            "P(w≤5)",
            "P(w≤10)",
            "P(w≤20)",
            "P(w≤40)",
            "P(w≤80)",
        ],
    );
    for r in results {
        for (name, e) in [("Lumos", &r.trimmed), ("Lumos w.o. TT", &r.untrimmed)] {
            t.push_row([
                r.dataset.clone(),
                name.to_string(),
                format!("{}", e.max() as u64),
                fmt2(e.eval(5.0)),
                fmt2(e.eval(10.0)),
                fmt2(e.eval(20.0)),
                fmt2(e.eval(40.0)),
                fmt2(e.eval(80.0)),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    #[test]
    fn trimming_removes_the_heavy_tail() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 4,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let results = run(&args);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(
                r.trimmed.max() * 2.0 <= r.untrimmed.max(),
                "{}: trimmed max {} vs untrimmed {}",
                r.dataset,
                r.trimmed.max(),
                r.untrimmed.max()
            );
            // CDF dominance at the tail: more mass below 20 after trimming.
            assert!(r.trimmed.eval(20.0) >= r.untrimmed.eval(20.0));
        }
        assert_eq!(table(&results).len(), 4);
    }
}
