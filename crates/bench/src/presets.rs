//! Scale-dependent experiment presets.
//!
//! The paper trains for 300 epochs with 1,000 (Facebook) / 300 (LastFM)
//! MCMC iterations; reduced scales shrink both so the full suite runs on a
//! laptop while preserving every qualitative shape.

use lumos_core::TaskKind;
use lumos_data::{Dataset, Scale};

/// Training epochs for a task at a scale. Link prediction needs the longer
/// schedule to climb above the LDP noise floor (§VIII-B uses 300 for both).
pub fn epochs_for(scale: Scale, task: TaskKind, quick: bool) -> usize {
    if quick {
        return 20;
    }
    match (scale, task) {
        (Scale::Smoke, TaskKind::Supervised) => 60,
        (Scale::Smoke, TaskKind::Unsupervised) => 150,
        (Scale::Small, TaskKind::Supervised) => 120,
        (Scale::Small, TaskKind::Unsupervised) => 350,
        (Scale::Paper, _) => 300,
    }
}

/// MCMC iterations per dataset (the paper: 1,000 Facebook / 300 LastFM).
pub fn mcmc_iterations_for(scale: Scale, dataset: &str) -> usize {
    let paper = if dataset == "facebook" { 1000 } else { 300 };
    match scale {
        Scale::Smoke => paper / 10,
        Scale::Small => paper / 3,
        Scale::Paper => paper,
    }
}

/// The two evaluation datasets at a scale.
pub fn datasets(scale: Scale) -> Vec<Dataset> {
    vec![Dataset::facebook_like(scale), Dataset::lastfm_like(scale)]
}

/// Runs closures in parallel pairs (the harness's outermost fan-out; the
/// machine has few cores and each run is single-threaded).
pub fn run_pair<A: Send, B: Send>(
    f: impl FnOnce() -> A + Send,
    g: impl FnOnce() -> B + Send,
) -> (A, B) {
    std::thread::scope(|s| {
        let ha = s.spawn(f);
        let b = g();
        (ha.join().expect("parallel task panicked"), b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_sensibly() {
        assert!(epochs_for(Scale::Paper, TaskKind::Supervised, false) == 300);
        assert!(
            epochs_for(Scale::Small, TaskKind::Unsupervised, false)
                > epochs_for(Scale::Small, TaskKind::Supervised, false)
        );
        assert_eq!(epochs_for(Scale::Paper, TaskKind::Supervised, true), 20);
        assert_eq!(mcmc_iterations_for(Scale::Paper, "facebook"), 1000);
        assert_eq!(mcmc_iterations_for(Scale::Paper, "lastfm"), 300);
        assert!(mcmc_iterations_for(Scale::Small, "facebook") < 1000);
    }

    #[test]
    fn run_pair_returns_both() {
        let (a, b) = run_pair(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
