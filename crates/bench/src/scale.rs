//! Scale sweep: flat vs hierarchical aggregation at 10³–10⁵ devices.
//!
//! The datasets the accuracy experiments train on top out at a few
//! thousand vertices, so this sweep drives the federation substrate
//! directly — `lumos-fed`'s ledger, `lumos-sim`'s epoch engine, and
//! `lumos-topo`'s tier timing — with a synthetic per-round protocol (two
//! ring neighbors per device plus the aggregation upload) over a
//! [`Scenario::MobileFleet`] fleet. Three claims become measurable at
//! fleet sizes the full trainer cannot reach:
//!
//! * **server traffic** is O(devices) bytes/round flat but O(aggregators)
//!   hierarchical — each aggregator forwards one pooled partial;
//! * **ledger memory** collapses from the per-edge matrix to the compact
//!   per-shard tallies (`ledger_entries` is the resident count);
//! * **wall cost per simulated device** stays bounded as the fleet grows,
//!   which is what lets the 10⁵-device row finish inside a CI smoke job.
//!
//! [`to_json`] renders the sweep as the machine-readable
//! `BENCH_scale.json` record the CI scale gate asserts on.

use std::time::Instant;

use lumos_common::rng::Xoshiro256pp;
use lumos_common::table::{fmt2, Table};
use lumos_fed::{ledger_work, SimNetwork};
use lumos_sim::{simulate_epoch, DeviceProfile, Scenario};
use lumos_topo::{tier_timing, Topology};

use crate::args::HarnessArgs;

/// Fleet sizes the sweep visits (the 10⁵-device row is the point).
pub const SWEEP_DEVICES: [usize; 3] = [4_000, 32_000, 100_000];

/// Bytes of one pooled-update message on the synthetic wire (mirrors the
/// trainer's 16-f32 embedding).
const UPDATE_BYTES: u64 = 64;

/// Tree nodes per device for the straggler cost model: every synthetic
/// device carries the same small tree, so timing spread comes from the
/// fleet's capability heterogeneity alone.
const TREE_NODES: usize = 4;

/// GNN layers priced by the cost model.
const LAYERS: usize = 2;

/// Aggregator count for `n` devices: `⌈√n⌉` balances the two tiers —
/// each aggregator hears O(√n) members and the server hears O(√n)
/// partials.
pub fn aggregators_for(n: usize) -> usize {
    (n as f64).sqrt().ceil() as usize
}

/// One (fleet size, topology) measurement.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Fleet size.
    pub devices: usize,
    /// `"flat"` or `"hierarchical"`.
    pub mode: &'static str,
    /// Aggregator count (0 in flat mode — devices report to the server).
    pub aggregators: usize,
    /// Rounds measured.
    pub rounds: usize,
    /// Mean simulated epoch makespan (hierarchical rows include the
    /// aggregator→server hop).
    pub makespan_secs: f64,
    /// Bytes arriving at the server per round — the O(devices) vs
    /// O(aggregators) claim.
    pub server_bytes_per_round: f64,
    /// Peak resident ledger entries (per-edge matrix flat, per-shard
    /// tallies hierarchical).
    pub peak_ledger_entries: usize,
    /// Wall-clock microseconds per simulated device-round.
    pub wall_us_per_device: f64,
}

/// Rounds per measurement: the synthetic protocol is identical each
/// round, so a short window is enough; quick mode halves it for CI.
fn rounds(quick: bool) -> usize {
    if quick {
        2
    } else {
        4
    }
}

/// Runs `rounds` of the synthetic protocol at fleet size `n` and measures
/// one row. The fleet and the topology derive only from `seed`, so flat
/// and hierarchical rows time exactly the same devices.
pub fn measure(n: usize, hierarchical: bool, rounds: usize, seed: u64) -> ScaleRow {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (n as u64).rotate_left(13));
    let profiles = Scenario::MobileFleet.fleet_spec().sample_fleet(n, &mut rng);
    let topo = hierarchical.then(|| Topology::seeded(n, aggregators_for(n), seed));
    let mut net = match &topo {
        Some(t) => SimNetwork::new_sharded(t.shard_vector()),
        None => SimNetwork::new(n),
    };
    let tree_sizes = vec![TREE_NODES; n];
    let aggregator = DeviceProfile::baseline();

    #[allow(clippy::disallowed_methods)] // mirrored lumos-lint waiver
    let started = Instant::now(); // lumos-lint: allow(wallclock-time) — wall-µs/device budget for the scale sweep CI gate; never mixed into virtual-time results
    let mut makespan_sum = 0.0f64;
    let mut peak_ledger = 0usize;
    for _ in 0..rounds {
        let snap = net.snapshot();
        // Two ring neighbors per device stand in for the tree-update
        // exchange, then every device ships its pooled update.
        for d in 0..n as u32 {
            net.send(d, (d + 1) % n as u32, UPDATE_BYTES);
            net.send(d, (d + 7) % n as u32, UPDATE_BYTES);
        }
        net.round();
        match &topo {
            Some(t) => {
                for d in 0..n as u32 {
                    net.send_to_aggregator(d, UPDATE_BYTES);
                }
                for shard in 0..t.num_aggregators() as u32 {
                    net.send_aggregator_to_server(shard, UPDATE_BYTES);
                }
            }
            None => {
                for d in 0..n as u32 {
                    net.send_to_server(d, UPDATE_BYTES);
                }
            }
        }
        net.round();
        peak_ledger = peak_ledger.max(net.ledger_entries());
        let work = ledger_work(&net, &snap, &tree_sizes, LAYERS);
        let stats = simulate_epoch(&profiles, &work);
        makespan_sum += match &topo {
            Some(t) => {
                let t2 = tier_timing(&stats, t, &aggregator, UPDATE_BYTES);
                stats.makespan_secs.max(t2.server_makespan_secs)
            }
            None => stats.makespan_secs,
        };
    }
    let wall_us = started.elapsed().as_micros() as f64;

    ScaleRow {
        devices: n,
        mode: if hierarchical { "hierarchical" } else { "flat" },
        aggregators: topo.as_ref().map_or(0, Topology::num_aggregators),
        rounds,
        makespan_secs: makespan_sum / rounds as f64,
        server_bytes_per_round: net.server_bytes_received() as f64 / rounds as f64,
        peak_ledger_entries: peak_ledger,
        wall_us_per_device: wall_us / (n * rounds) as f64,
    }
}

/// Runs the full sweep: every fleet size in [`SWEEP_DEVICES`], flat then
/// hierarchical.
pub fn run(args: &HarnessArgs) -> Vec<ScaleRow> {
    let rounds = rounds(args.quick);
    let mut rows = Vec::with_capacity(2 * SWEEP_DEVICES.len());
    for &n in &SWEEP_DEVICES {
        for hierarchical in [false, true] {
            rows.push(measure(n, hierarchical, rounds, args.seed));
        }
    }
    rows
}

/// Renders the sweep as one table row per (fleet size, topology).
pub fn table(rows: &[ScaleRow]) -> Table {
    let mut t = Table::new(
        "Scale sweep: flat vs hierarchical aggregation",
        &[
            "devices",
            "mode",
            "aggregators",
            "epoch secs",
            "server bytes/round",
            "peak ledger entries",
            "wall µs/device",
        ],
    );
    for r in rows {
        t.push_row([
            r.devices.to_string(),
            r.mode.to_string(),
            r.aggregators.to_string(),
            fmt2(r.makespan_secs),
            fmt2(r.server_bytes_per_round),
            r.peak_ledger_entries.to_string(),
            fmt2(r.wall_us_per_device),
        ]);
    }
    t
}

/// A finite `f64` as a JSON number (`null` for NaN/∞, which JSON lacks).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A string as a JSON string literal.
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders the sweep as the machine-readable `BENCH_scale.json` document
/// the CI scale gate parses: per-(devices, mode) traffic, memory, and
/// wall-cost figures keyed by seed and quick flag.
pub fn to_json(rows: &[ScaleRow], args: &HarnessArgs) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scale_sweep\",\n");
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"quick\": {},\n", args.quick));
    out.push_str("  \"rows\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"devices\": {},\n",
                    "      \"mode\": {},\n",
                    "      \"aggregators\": {},\n",
                    "      \"rounds\": {},\n",
                    "      \"makespan_secs\": {},\n",
                    "      \"server_bytes_per_round\": {},\n",
                    "      \"peak_ledger_entries\": {},\n",
                    "      \"wall_us_per_device\": {}\n",
                    "    }}"
                ),
                r.devices,
                json_str(r.mode),
                r.aggregators,
                r.rounds,
                json_num(r.makespan_secs),
                json_num(r.server_bytes_per_round),
                r.peak_ledger_entries,
                json_num(r.wall_us_per_device),
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    #[test]
    fn hierarchical_mode_cuts_server_bytes_and_ledger_memory() {
        let flat = measure(600, false, 2, 9);
        let tiered = measure(600, true, 2, 9);
        // Flat: every device's update lands at the server. Hierarchical:
        // only the ⌈√n⌉ aggregator partials do.
        assert_eq!(flat.server_bytes_per_round, 600.0 * UPDATE_BYTES as f64);
        assert_eq!(
            tiered.server_bytes_per_round,
            tiered.aggregators as f64 * UPDATE_BYTES as f64
        );
        assert!(tiered.server_bytes_per_round < flat.server_bytes_per_round / 10.0);
        // The per-edge matrix holds the ring + server edges; the sharded
        // ledger holds two tallies per shard.
        assert!(tiered.peak_ledger_entries < flat.peak_ledger_entries);
        assert_eq!(tiered.peak_ledger_entries, 2 * tiered.aggregators);
        // Both modes simulate a real barrier.
        assert!(flat.makespan_secs > 0.0);
        assert!(tiered.makespan_secs > 0.0);
    }

    #[test]
    fn measurements_are_seed_deterministic() {
        let a = measure(400, true, 2, 5);
        let b = measure(400, true, 2, 5);
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.server_bytes_per_round, b.server_bytes_per_round);
        assert_eq!(a.peak_ledger_entries, b.peak_ledger_entries);
    }

    #[test]
    fn sqrt_sizing_covers_the_sweep() {
        assert_eq!(aggregators_for(4_000), 64);
        assert_eq!(aggregators_for(32_000), 179);
        assert_eq!(aggregators_for(100_000), 317);
    }

    #[test]
    fn json_document_is_well_formed() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 9,
            quick: true,
            json: None,
            sensitivity: false,
        };
        let rows = vec![measure(300, false, 1, 9), measure(300, true, 1, 9)];
        let json = to_json(&rows, &args);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"scale_sweep\""));
        assert!(json.contains("\"mode\": \"flat\""));
        assert!(json.contains("\"mode\": \"hierarchical\""));
        assert!(json.ends_with("}\n"));
        assert_eq!(table(&rows).len(), 2);
    }
}
