//! Figure 6: ablation study — Lumos vs Lumos w/o virtual nodes (VN) vs
//! Lumos w/o tree trimming (TT), on accuracy and AUC.

use lumos_common::table::{fmt2, fmt4, Table};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;

use crate::args::HarnessArgs;
use crate::presets::{datasets, epochs_for, mcmc_iterations_for, run_pair};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Dataset name.
    pub dataset: String,
    /// Backbone name.
    pub backbone: String,
    /// Task.
    pub task: TaskKind,
    /// Full Lumos metric.
    pub lumos: f64,
    /// Without virtual nodes.
    pub without_vn: f64,
    /// Without tree trimming.
    pub without_tt: f64,
}

fn eval_dataset(ds: &Dataset, args: &HarnessArgs) -> Vec<Fig6Row> {
    let mcmc = mcmc_iterations_for(args.scale, &ds.name);
    let mut rows = Vec::new();
    for task in [TaskKind::Supervised, TaskKind::Unsupervised] {
        // The ablation deltas emerge well before full convergence; trim the
        // unsupervised schedule to keep the 24-run grid tractable.
        let epochs = match task {
            TaskKind::Supervised => epochs_for(args.scale, task, args.quick),
            TaskKind::Unsupervised => epochs_for(args.scale, task, args.quick) * 2 / 5,
        };
        for backbone in [Backbone::Gcn, Backbone::Gat] {
            let base = LumosConfig::new(backbone, task)
                .with_epochs(epochs)
                .with_mcmc_iterations(mcmc)
                .with_seed(args.seed);
            let lumos = run_lumos(ds, &base).test_metric;
            let without_vn = run_lumos(ds, &base.clone().without_virtual_nodes()).test_metric;
            let without_tt = run_lumos(ds, &base.clone().without_tree_trimming()).test_metric;
            rows.push(Fig6Row {
                dataset: ds.name.clone(),
                backbone: backbone.name().into(),
                task,
                lumos,
                without_vn,
                without_tt,
            });
        }
    }
    rows
}

/// Runs the Figure 6 ablations.
pub fn run(args: &HarnessArgs) -> Vec<Fig6Row> {
    let ds = datasets(args.scale);
    let (fb, lfm) = (&ds[0], &ds[1]);
    let (a, b) = run_pair(|| eval_dataset(fb, args), || eval_dataset(lfm, args));
    a.into_iter().chain(b).collect()
}

/// Renders both panels of Figure 6.
pub fn table(rows: &[Fig6Row]) -> Table {
    let mut t = Table::new(
        "Figure 6: ablation — accuracy/AUC contribution of each module",
        &["dataset", "backbone", "task", "Lumos", "w.o. VN", "w.o. TT"],
    );
    for r in rows {
        let fmt: fn(f64) -> String = match r.task {
            TaskKind::Supervised => |x| fmt2(100.0 * x),
            TaskKind::Unsupervised => fmt4,
        };
        t.push_row([
            r.dataset.clone(),
            r.backbone.clone(),
            r.task.name().to_string(),
            fmt(r.lumos),
            fmt(r.without_vn),
            fmt(r.without_tt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    /// The paper's two ablation findings at smoke scale (GCN, supervised):
    /// virtual nodes help; trimming costs almost nothing.
    #[test]
    fn ablation_shapes_hold_at_smoke_scale() {
        let args = HarnessArgs {
            scale: Scale::Smoke,
            seed: 2,
            quick: false,
            json: None,
            sensitivity: false,
        };
        let ds = lumos_data::Dataset::facebook_like(Scale::Smoke);
        let rows = eval_dataset(&ds, &args);
        let sup_gcn = rows
            .iter()
            .find(|r| r.task == TaskKind::Supervised && r.backbone == "GCN")
            .unwrap();
        assert!(
            sup_gcn.lumos > sup_gcn.without_vn,
            "virtual nodes must help: {} vs {}",
            sup_gcn.lumos,
            sup_gcn.without_vn
        );
        assert!(
            (sup_gcn.lumos - sup_gcn.without_tt).abs() < 0.12,
            "trimming must be nearly free: {} vs {}",
            sup_gcn.lumos,
            sup_gcn.without_tt
        );
    }
}
