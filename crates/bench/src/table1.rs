//! §VIII-A dataset table: generated statistics vs the paper's datasets.

use lumos_common::table::Table;
use lumos_data::Scale;
use lumos_graph::generate::edge_homophily;

use crate::presets::datasets;

/// Paper-reported statistics for the two datasets.
const PAPER_ROWS: [(&str, usize, usize, usize, usize); 2] = [
    ("facebook", 22_470, 170_912, 4_714, 4),
    ("lastfm", 7_624, 55_612, 128, 18),
];

/// Builds the dataset table at the given scale.
pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table (§VIII-A): datasets — generated vs paper",
        &[
            "dataset",
            "vertices",
            "edges",
            "features",
            "classes",
            "avg deg",
            "max deg",
            "homophily",
            "paper V",
            "paper E",
            "paper d",
            "paper L",
        ],
    );
    for ds in datasets(scale) {
        let (pv, pe, pd, pl) = PAPER_ROWS
            .iter()
            .find(|(name, ..)| *name == ds.name)
            .map(|&(_, v, e, d, l)| (v, e, d, l))
            .expect("known dataset");
        t.push_row([
            ds.name.clone(),
            ds.num_nodes().to_string(),
            ds.graph.num_edges().to_string(),
            ds.feature_dim.to_string(),
            ds.num_classes.to_string(),
            format!("{:.1}", ds.graph.avg_degree()),
            ds.graph.max_degree().to_string(),
            format!("{:.2}", edge_homophily(&ds.graph, &ds.labels)),
            pv.to_string(),
            pe.to_string(),
            pd.to_string(),
            pl.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_both_datasets() {
        let t = run(Scale::Smoke);
        assert_eq!(t.len(), 2);
        let md = t.to_markdown();
        assert!(md.contains("facebook"));
        assert!(md.contains("lastfm"));
    }
}
