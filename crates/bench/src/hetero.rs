//! Figure 8 extension: system cost across heterogeneous-device scenarios.
//!
//! The paper evaluates tree trimming on identical devices (Fig. 8). This
//! sweep replays the same workload through `lumos-sim` under each
//! [`Scenario`] preset and reports the simulated epoch makespan six ways:
//! trimmed under the paper's node-count objective, trimmed under the
//! capability-weighted [`BalanceObjective::VirtualSecs`] objective,
//! trimmed under the semi-synchronous deadline aggregation policy
//! ([`AggregationPolicy::Deadline`] at [`DEADLINE_FACTOR`]), trimmed under
//! the buffered policy ([`AggregationPolicy::Buffered`] at the same factor
//! and [`BUFFERED_DECAY`]), trimmed under the barrier-free async quorum
//! ([`AggregationPolicy::Async`] at [`ASYNC_QUORUM_NUM`]⁄[`ASYNC_QUORUM_DEN`]
//! of the fleet), and untrimmed. Six claims become measurable: the
//! makespan ordering `Uniform < StragglerTail` for the same workload, the
//! growth of trimming's win as capability heterogeneity compounds the
//! degree heterogeneity the trimmer targets, the additional win of
//! balancing virtual seconds instead of tree nodes once devices stop being
//! equals, the barrier time the deadline buys back by dropping late
//! updates (`late_drops` counts what that costs in participation), that
//! buffering keeps that barrier win while wasting nothing
//! (`buffered_updates` banked, `wasted_updates` zero, `migrated_nodes`
//! moved off overloaded devices), and that abolishing the barrier outright
//! keeps the makespan win with *zero* drops and *zero* waste — the quorum
//! closes each round at the `min_updates`-th landing and carries the
//! overflow forward at full weight.
//!
//! [`run_sensitivity`] adds the buffered policy's decay × re-balance-
//! trigger sensitivity grid ([`SensitivityRow`]): how accuracy and
//! makespan move as the staleness discount and the migration trigger
//! sweep a small grid under the straggler-tail (and, at full scale,
//! churn) fleets.
//!
//! [`to_json`] renders the sweep as the machine-readable `BENCH_fig8.json`
//! record the perf-trajectory tooling consumes.

use lumos_common::table::{fmt2, Table};
use lumos_core::{
    run_lumos, AggregationPolicy, BalanceObjective, LumosConfig, SimSummary, TaskKind,
};
use lumos_data::Dataset;
use lumos_gnn::Backbone;
use lumos_sim::Scenario;

use crate::args::HarnessArgs;
use crate::presets::{mcmc_iterations_for, run_pair};

/// Deadline multiple the sweep's semi-sync column runs at: updates landing
/// after `2 × median` delivery are dropped from the round.
pub const DEADLINE_FACTOR: f64 = 2.0;

/// Per-round staleness discount for the sweep's buffered column: a late
/// update blends into its arrival round at `0.5^staleness`.
pub const BUFFERED_DECAY: f64 = 0.5;

/// Async quorum fraction, as a ratio: the async column closes each round
/// once `⌈n × ASYNC_QUORUM_NUM / ASYNC_QUORUM_DEN⌉` updates have landed
/// (80% of the fleet).
pub const ASYNC_QUORUM_NUM: usize = 4;
/// Denominator of the async quorum fraction.
pub const ASYNC_QUORUM_DEN: usize = 5;

/// The async column's quorum for an `n`-device fleet: ⌈0.8 × n⌉.
pub fn async_quorum(n_devices: usize) -> usize {
    (n_devices * ASYNC_QUORUM_NUM).div_ceil(ASYNC_QUORUM_DEN)
}

/// One scenario's cost comparison (two trimmed objectives and the deadline
/// policy vs untrimmed).
#[derive(Debug, Clone)]
pub struct HeteroRow {
    /// Dataset name.
    pub dataset: String,
    /// Device scenario.
    pub scenario: Scenario,
    /// Simulated seconds per epoch, trimmed, node-count objective.
    pub makespan_tree_nodes: f64,
    /// Simulated seconds per epoch, trimmed, virtual-seconds objective.
    pub makespan_virtual_secs: f64,
    /// Simulated seconds per epoch, trimmed, node-count objective under
    /// the deadline aggregation policy ([`DEADLINE_FACTOR`]).
    pub makespan_deadline: f64,
    /// Simulated seconds per epoch, trimmed, node-count objective under
    /// the buffered policy ([`DEADLINE_FACTOR`], [`BUFFERED_DECAY`]).
    pub makespan_buffered: f64,
    /// Simulated seconds per epoch, trimmed, node-count objective under
    /// the barrier-free async quorum ([`async_quorum`] of the fleet).
    pub makespan_async: f64,
    /// Simulated seconds per epoch without tree trimming.
    pub makespan_untrimmed: f64,
    /// Mean device utilization under the node-count objective.
    pub utilization_tree_nodes: f64,
    /// Mean device utilization under the virtual-seconds objective.
    pub utilization_virtual_secs: f64,
    /// Mean device utilization without trimming.
    pub utilization_untrimmed: f64,
    /// Most frequent straggler (device id, epochs straggled) under the
    /// node-count objective.
    pub dominant_straggler: Option<(u32, usize)>,
    /// Device-rounds lost to churn.
    pub dropped_device_rounds: u64,
    /// Device-rounds dropped by the deadline policy (the participation
    /// price of `makespan_deadline`).
    pub late_drops: u64,
    /// Late updates the buffered run banked for a later round.
    pub buffered_updates: u64,
    /// Late updates the buffered run discarded forever (zero by
    /// construction — asserted by the CI smoke gate).
    pub wasted_updates: u64,
    /// Tree nodes the buffered run's live re-balancer moved off
    /// overloaded devices.
    pub migrated_nodes: u64,
    /// Overflow updates the async run carried into a later round (landed
    /// after the quorum closed; blended at full weight next round).
    pub async_carried: u64,
    /// Device-rounds the async run dropped — zero by construction (the
    /// quorum defers, never discards), asserted by the CI smoke gate.
    pub async_late_drops: u64,
    /// Updates the async run discarded forever — likewise zero by
    /// construction.
    pub async_wasted: u64,
}

impl HeteroRow {
    /// Percentage of simulated epoch time trimming saves in this scenario
    /// (node-count objective vs untrimmed).
    pub fn saved_pct(&self) -> f64 {
        if self.makespan_untrimmed == 0.0 {
            0.0
        } else {
            (self.makespan_untrimmed - self.makespan_tree_nodes) / self.makespan_untrimmed * 100.0
        }
    }

    /// Absolute simulated seconds per epoch trimming saves — the win that
    /// grows as capability heterogeneity compounds degree heterogeneity.
    pub fn saved_secs(&self) -> f64 {
        self.makespan_untrimmed - self.makespan_tree_nodes
    }

    /// Absolute seconds per epoch the weighted objective saves on top of
    /// node-count trimming (positive when capability-awareness pays).
    pub fn weighted_win_secs(&self) -> f64 {
        self.makespan_tree_nodes - self.makespan_virtual_secs
    }

    /// Absolute seconds per epoch the deadline policy saves over the
    /// full-sync barrier on the same (node-count, trimmed) placement.
    pub fn deadline_win_secs(&self) -> f64 {
        self.makespan_tree_nodes - self.makespan_deadline
    }

    /// Absolute seconds per epoch the buffered policy saves over the
    /// full-sync barrier — the win that must survive buffering instead of
    /// discarding late work.
    pub fn buffered_win_secs(&self) -> f64 {
        self.makespan_tree_nodes - self.makespan_buffered
    }

    /// Absolute seconds per epoch the barrier-free async quorum saves over
    /// the full-sync barrier — bought without dropping or wasting a single
    /// update.
    pub fn async_win_secs(&self) -> f64 {
        self.makespan_tree_nodes - self.makespan_async
    }
}

/// Epochs per measurement: makespan statistics stabilize quickly and do
/// not depend on convergence. Quick mode halves the window for CI smoke.
fn cost_epochs(quick: bool) -> usize {
    if quick {
        4
    } else {
        8
    }
}

fn summary(
    ds: &Dataset,
    base: &LumosConfig,
    objective: BalanceObjective,
    trim: bool,
    policy: AggregationPolicy,
) -> SimSummary {
    let mut cfg = base
        .clone()
        .with_balance_objective(objective)
        .with_aggregation_policy(policy);
    if !trim {
        cfg = cfg.without_tree_trimming();
    }
    run_lumos(ds, &cfg)
        .sim
        .expect("scenario configs always produce a sim summary")
}

fn eval_scenario(ds: &Dataset, scenario: Scenario, args: &HarnessArgs) -> HeteroRow {
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(cost_epochs(args.quick))
        .with_mcmc_iterations(mcmc_iterations_for(args.scale, &ds.name))
        .with_seed(args.seed)
        .with_scenario(scenario);
    let deadline_policy = AggregationPolicy::Deadline {
        factor: DEADLINE_FACTOR,
    };
    let buffered_policy = AggregationPolicy::Buffered {
        factor: DEADLINE_FACTOR,
        decay: BUFFERED_DECAY,
    };
    let async_policy = AggregationPolicy::Async {
        min_updates: async_quorum(ds.num_nodes()),
    };
    let (tree_nodes, (virtual_secs, (deadline, (buffered, (asynced, untrimmed))))) = run_pair(
        || {
            summary(
                ds,
                &base,
                BalanceObjective::TreeNodes,
                true,
                AggregationPolicy::FullSync,
            )
        },
        || {
            run_pair(
                || {
                    summary(
                        ds,
                        &base,
                        BalanceObjective::VirtualSecs,
                        true,
                        AggregationPolicy::FullSync,
                    )
                },
                || {
                    run_pair(
                        || {
                            summary(
                                ds,
                                &base,
                                BalanceObjective::TreeNodes,
                                true,
                                deadline_policy,
                            )
                        },
                        || {
                            run_pair(
                                || {
                                    summary(
                                        ds,
                                        &base,
                                        BalanceObjective::TreeNodes,
                                        true,
                                        buffered_policy,
                                    )
                                },
                                || {
                                    run_pair(
                                        || {
                                            summary(
                                                ds,
                                                &base,
                                                BalanceObjective::TreeNodes,
                                                true,
                                                async_policy,
                                            )
                                        },
                                        || {
                                            summary(
                                                ds,
                                                &base,
                                                BalanceObjective::TreeNodes,
                                                false,
                                                AggregationPolicy::FullSync,
                                            )
                                        },
                                    )
                                },
                            )
                        },
                    )
                },
            )
        },
    );
    HeteroRow {
        dataset: ds.name.clone(),
        scenario,
        makespan_tree_nodes: tree_nodes.avg_epoch_virtual_secs,
        makespan_virtual_secs: virtual_secs.avg_epoch_virtual_secs,
        makespan_deadline: deadline.avg_epoch_virtual_secs,
        makespan_buffered: buffered.avg_epoch_virtual_secs,
        makespan_async: asynced.avg_epoch_virtual_secs,
        makespan_untrimmed: untrimmed.avg_epoch_virtual_secs,
        utilization_tree_nodes: tree_nodes.mean_utilization,
        utilization_virtual_secs: virtual_secs.mean_utilization,
        utilization_untrimmed: untrimmed.mean_utilization,
        dominant_straggler: tree_nodes.dominant_straggler(),
        dropped_device_rounds: tree_nodes.dropped_device_rounds,
        late_drops: deadline.late_drops,
        buffered_updates: buffered.buffered_updates,
        wasted_updates: buffered.wasted_updates,
        migrated_nodes: buffered.migrated_nodes,
        async_carried: asynced.buffered_updates,
        async_late_drops: asynced.late_drops,
        async_wasted: asynced.wasted_updates,
    }
}

/// Runs the scenario sweep on the primary dataset. Quick mode restricts
/// the sweep to the three scenarios the CI smoke gate asserts on (uniform,
/// the straggler tail, and churn).
pub fn run(args: &HarnessArgs) -> Vec<HeteroRow> {
    let ds = Dataset::facebook_like(args.scale);
    let scenarios: &[Scenario] = if args.quick {
        &[Scenario::Uniform, Scenario::StragglerTail, Scenario::Churn]
    } else {
        &Scenario::ALL
    };
    scenarios
        .iter()
        .map(|&s| eval_scenario(&ds, s, args))
        .collect()
}

/// One cell of the buffered-policy sensitivity grid: a `(decay,
/// re-balance trigger)` setting and the accuracy × makespan it lands at.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Dataset name.
    pub dataset: String,
    /// Device scenario the cell ran under.
    pub scenario: Scenario,
    /// Staleness discount of the buffered policy (`decay^staleness`).
    pub decay: f64,
    /// Re-balance trigger threshold (× the fleet-mean per-node price).
    pub threshold: f64,
    /// Re-balance trigger patience (consecutive overpriced rounds).
    pub patience: u32,
    /// Test accuracy the cell converged to.
    pub accuracy: f64,
    /// Simulated seconds per epoch.
    pub makespan: f64,
    /// Late updates banked for a later round.
    pub buffered_updates: u64,
    /// Tree nodes the live re-balancer migrated.
    pub migrated_nodes: u64,
}

/// The sensitivity grid's decay values (quick mode trims the middle).
fn sensitivity_decays(quick: bool) -> &'static [f64] {
    if quick {
        &[0.3, 0.7]
    } else {
        &[0.3, 0.5, 0.7]
    }
}

/// The sensitivity grid's `(threshold, patience)` re-balance triggers.
fn sensitivity_triggers(quick: bool) -> &'static [(f64, u32)] {
    if quick {
        &[(1.5, 1), (2.0, 2)]
    } else {
        &[(1.5, 1), (2.0, 2), (3.0, 4)]
    }
}

fn eval_sensitivity_cell(
    ds: &Dataset,
    scenario: Scenario,
    decay: f64,
    threshold: f64,
    patience: u32,
    args: &HarnessArgs,
) -> SensitivityRow {
    let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(cost_epochs(args.quick))
        .with_mcmc_iterations(mcmc_iterations_for(args.scale, &ds.name))
        .with_seed(args.seed)
        .with_scenario(scenario)
        .with_aggregation_policy(AggregationPolicy::Buffered {
            factor: DEADLINE_FACTOR,
            decay,
        })
        .with_rebalance_trigger(threshold, patience);
    let report = run_lumos(ds, &cfg);
    let sim = report
        .sim
        .as_ref()
        .expect("scenario configs always produce a sim summary");
    SensitivityRow {
        dataset: ds.name.clone(),
        scenario,
        decay,
        threshold,
        patience,
        accuracy: report.test_metric,
        makespan: sim.avg_epoch_virtual_secs,
        buffered_updates: sim.buffered_updates,
        migrated_nodes: sim.migrated_nodes,
    }
}

/// Runs the buffered-policy sensitivity grid on the primary dataset:
/// every `decay × (threshold, patience)` cell under the straggler-tail
/// fleet (and, at full scale, churn — the fleet where the re-balance
/// trigger actually fires). Quick mode runs the 2×2 corner grid on the
/// straggler tail only.
pub fn run_sensitivity(args: &HarnessArgs) -> Vec<SensitivityRow> {
    let ds = Dataset::facebook_like(args.scale);
    let scenarios: &[Scenario] = if args.quick {
        &[Scenario::StragglerTail]
    } else {
        &[Scenario::StragglerTail, Scenario::Churn]
    };
    let cells: Vec<(Scenario, f64, f64, u32)> = scenarios
        .iter()
        .flat_map(|&s| {
            sensitivity_decays(args.quick).iter().flat_map(move |&d| {
                sensitivity_triggers(args.quick)
                    .iter()
                    .map(move |&(th, pa)| (s, d, th, pa))
            })
        })
        .collect();
    let mut rows = Vec::with_capacity(cells.len());
    for pair in cells.chunks(2) {
        match *pair {
            [(s, d, th, pa)] => rows.push(eval_sensitivity_cell(&ds, s, d, th, pa, args)),
            [(s0, d0, th0, pa0), (s1, d1, th1, pa1)] => {
                let (a, b) = run_pair(
                    || eval_sensitivity_cell(&ds, s0, d0, th0, pa0, args),
                    || eval_sensitivity_cell(&ds, s1, d1, th1, pa1, args),
                );
                rows.push(a);
                rows.push(b);
            }
            _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
        }
    }
    rows
}

/// Renders the sensitivity grid as one table row per cell.
pub fn sensitivity_table(rows: &[SensitivityRow]) -> Table {
    let mut t = Table::new(
        "Buffered-policy sensitivity: accuracy × makespan across decay and re-balance trigger",
        &[
            "dataset",
            "scenario",
            "decay",
            "threshold",
            "patience",
            "accuracy",
            "epoch secs",
            "buffered",
            "moved nodes",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.scenario.name().to_string(),
            fmt2(r.decay),
            fmt2(r.threshold),
            r.patience.to_string(),
            fmt2(r.accuracy),
            fmt2(r.makespan),
            r.buffered_updates.to_string(),
            r.migrated_nodes.to_string(),
        ]);
    }
    t
}

/// Renders the sweep as one table row per scenario.
pub fn table(rows: &[HeteroRow]) -> Table {
    let mut t = Table::new(
        "Figure 8 (hetero): simulated epoch makespan by device scenario and balance objective",
        &[
            "dataset",
            "scenario",
            "epoch secs (nodes)",
            "epoch secs (vsecs)",
            "epoch secs (deadline)",
            "epoch secs (buffered)",
            "epoch secs (async)",
            "epoch secs w.o. TT",
            "vsecs win",
            "deadline win",
            "buffered win",
            "async win",
            "late drops",
            "buffered",
            "wasted",
            "moved nodes",
            "async carried",
            "saved secs",
            "saved %",
            "util (nodes)",
            "util (vsecs)",
            "top straggler",
            "dropped dev-rounds",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.scenario.name().to_string(),
            fmt2(r.makespan_tree_nodes),
            fmt2(r.makespan_virtual_secs),
            fmt2(r.makespan_deadline),
            fmt2(r.makespan_buffered),
            fmt2(r.makespan_async),
            fmt2(r.makespan_untrimmed),
            fmt2(r.weighted_win_secs()),
            fmt2(r.deadline_win_secs()),
            fmt2(r.buffered_win_secs()),
            fmt2(r.async_win_secs()),
            r.late_drops.to_string(),
            r.buffered_updates.to_string(),
            r.wasted_updates.to_string(),
            r.migrated_nodes.to_string(),
            r.async_carried.to_string(),
            fmt2(r.saved_secs()),
            fmt2(r.saved_pct()),
            fmt2(r.utilization_tree_nodes),
            fmt2(r.utilization_virtual_secs),
            r.dominant_straggler
                .map_or("n/a".to_string(), |(d, c)| format!("dev {d} ×{c}")),
            r.dropped_device_rounds.to_string(),
        ]);
    }
    t
}

/// A finite `f64` as a JSON number (`null` for NaN/∞, which JSON lacks).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A string as a JSON string literal (names here are ASCII identifiers;
/// escape the two characters that could break the quoting anyway).
fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders the sweep as the machine-readable `BENCH_fig8.json` document:
/// per-scenario, per-objective mean epoch makespans plus the derived wins
/// and the (possibly empty) sensitivity grid, keyed by scale and seed so
/// perf trajectories can be diffed run to run.
pub fn to_json(rows: &[HeteroRow], sensitivity: &[SensitivityRow], args: &HarnessArgs) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"fig8_hetero\",\n");
    out.push_str(&format!("  \"scale\": {},\n", json_str(args.scale.name())));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"quick\": {},\n", args.quick));
    out.push_str("  \"rows\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let straggler = r
                .dominant_straggler
                .map_or("null".to_string(), |(d, _)| d.to_string());
            format!(
                concat!(
                    "    {{\n",
                    "      \"dataset\": {},\n",
                    "      \"scenario\": {},\n",
                    "      \"makespan_tree_nodes\": {},\n",
                    "      \"makespan_virtual_secs\": {},\n",
                    "      \"makespan_deadline\": {},\n",
                    "      \"makespan_buffered\": {},\n",
                    "      \"makespan_async\": {},\n",
                    "      \"makespan_untrimmed\": {},\n",
                    "      \"weighted_win_secs\": {},\n",
                    "      \"deadline_win_secs\": {},\n",
                    "      \"buffered_win_secs\": {},\n",
                    "      \"async_win_secs\": {},\n",
                    "      \"late_drops\": {},\n",
                    "      \"buffered_updates\": {},\n",
                    "      \"wasted_updates\": {},\n",
                    "      \"migrated_nodes\": {},\n",
                    "      \"async_carried\": {},\n",
                    "      \"async_late_drops\": {},\n",
                    "      \"async_wasted\": {},\n",
                    "      \"saved_secs\": {},\n",
                    "      \"utilization_tree_nodes\": {},\n",
                    "      \"utilization_virtual_secs\": {},\n",
                    "      \"utilization_untrimmed\": {},\n",
                    "      \"dominant_straggler\": {},\n",
                    "      \"dropped_device_rounds\": {}\n",
                    "    }}"
                ),
                json_str(&r.dataset),
                json_str(r.scenario.name()),
                json_num(r.makespan_tree_nodes),
                json_num(r.makespan_virtual_secs),
                json_num(r.makespan_deadline),
                json_num(r.makespan_buffered),
                json_num(r.makespan_async),
                json_num(r.makespan_untrimmed),
                json_num(r.weighted_win_secs()),
                json_num(r.deadline_win_secs()),
                json_num(r.buffered_win_secs()),
                json_num(r.async_win_secs()),
                r.late_drops,
                r.buffered_updates,
                r.wasted_updates,
                r.migrated_nodes,
                r.async_carried,
                r.async_late_drops,
                r.async_wasted,
                json_num(r.saved_secs()),
                json_num(r.utilization_tree_nodes),
                json_num(r.utilization_virtual_secs),
                json_num(r.utilization_untrimmed),
                straggler,
                r.dropped_device_rounds,
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"sensitivity\": [\n");
    let grid: Vec<String> = sensitivity
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"dataset\": {},\n",
                    "      \"scenario\": {},\n",
                    "      \"decay\": {},\n",
                    "      \"threshold\": {},\n",
                    "      \"patience\": {},\n",
                    "      \"accuracy\": {},\n",
                    "      \"makespan\": {},\n",
                    "      \"buffered_updates\": {},\n",
                    "      \"migrated_nodes\": {}\n",
                    "    }}"
                ),
                json_str(&r.dataset),
                json_str(r.scenario.name()),
                json_num(r.decay),
                json_num(r.threshold),
                r.patience,
                json_num(r.accuracy),
                json_num(r.makespan),
                r.buffered_updates,
                r.migrated_nodes,
            )
        })
        .collect();
    out.push_str(&grid.join(",\n"));
    if !grid.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    fn smoke_args() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Smoke,
            seed: 8,
            quick: false,
            json: None,
            sensitivity: false,
        }
    }

    #[test]
    fn heterogeneity_raises_makespan_and_trimming_still_wins() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let args = smoke_args();
        let uniform = eval_scenario(&ds, Scenario::Uniform, &args);
        let tail = eval_scenario(&ds, Scenario::StragglerTail, &args);
        // Same workload, slower tail ⇒ strictly larger simulated makespan.
        assert!(
            uniform.makespan_tree_nodes < tail.makespan_tree_nodes,
            "uniform {} must undercut straggler-tail {}",
            uniform.makespan_tree_nodes,
            tail.makespan_tree_nodes
        );
        // Trimming reduces the simulated makespan in both regimes.
        for r in [&uniform, &tail] {
            assert!(
                r.makespan_tree_nodes < r.makespan_untrimmed,
                "{}: trimmed {} vs untrimmed {}",
                r.scenario.name(),
                r.makespan_tree_nodes,
                r.makespan_untrimmed
            );
            assert!(r.saved_pct() > 0.0);
        }
        // Trimming's absolute makespan win grows with heterogeneity: the
        // straggler's tree shrinks, and on a slow device every trimmed
        // node is worth more virtual seconds.
        assert!(
            tail.saved_secs() > uniform.saved_secs(),
            "saved secs must grow with heterogeneity: {} vs {}",
            tail.saved_secs(),
            uniform.saved_secs()
        );
        // The weighted objective strictly beats node counts once devices
        // stop being equals: the slow tail sheds tree nodes priced in µs.
        assert!(
            tail.makespan_virtual_secs < tail.makespan_tree_nodes,
            "straggler-tail: virtual-secs {} must beat tree-nodes {}",
            tail.makespan_virtual_secs,
            tail.makespan_tree_nodes
        );
        // The deadline policy cuts the barrier under a Pareto tail — and
        // pays for it in dropped device-rounds.
        assert!(
            tail.makespan_deadline < tail.makespan_tree_nodes,
            "straggler-tail: deadline {} must beat full-sync {}",
            tail.makespan_deadline,
            tail.makespan_tree_nodes
        );
        assert!(tail.late_drops > 0, "the tail must breach the deadline");
        assert!(tail.deadline_win_secs() > 0.0);
        // Buffering banks the tail's late updates instead of wasting them —
        // and keeps nearly all of the deadline's barrier win.
        assert!(tail.buffered_updates > 0);
        assert_eq!(tail.wasted_updates, 0);
        assert!(
            tail.buffered_win_secs() >= 0.95 * tail.deadline_win_secs(),
            "buffered win {} must keep ≥95% of deadline win {}",
            tail.buffered_win_secs(),
            tail.deadline_win_secs()
        );
        // The barrier-free quorum closes each round at the 80th-percentile
        // landing: it must beat the barrier, carry its overflow forward,
        // and neither drop nor waste a single update.
        assert!(
            tail.makespan_async < tail.makespan_tree_nodes,
            "straggler-tail: async {} must beat full-sync {}",
            tail.makespan_async,
            tail.makespan_tree_nodes
        );
        assert!(tail.async_carried > 0, "the overflow must be carried");
        assert_eq!(tail.async_late_drops, 0, "the quorum never drops");
        assert_eq!(tail.async_wasted, 0, "the quorum never wastes");
        assert_eq!(uniform.async_late_drops, 0);
        assert_eq!(uniform.async_wasted, 0);
        assert_eq!(table(&[uniform, tail]).len(), 2);
    }

    #[test]
    fn sensitivity_grid_covers_every_cell_and_decay_trades_time_for_accuracy() {
        let mut args = smoke_args();
        args.quick = true;
        let grid = run_sensitivity(&args);
        // Quick mode: 2 decays × 2 triggers on the straggler tail only.
        assert_eq!(grid.len(), 4);
        for r in &grid {
            assert_eq!(r.scenario, Scenario::StragglerTail);
            assert!(r.makespan > 0.0, "cell must simulate: {r:?}");
            assert!(r.accuracy > 0.0, "cell must learn: {r:?}");
            assert!(r.buffered_updates > 0, "tail must breach the deadline");
        }
        // Every grid coordinate is distinct.
        let mut coords: Vec<(u64, u64, u32)> = grid
            .iter()
            .map(|r| (r.decay.to_bits(), r.threshold.to_bits(), r.patience))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), 4, "grid cells must not repeat");
        assert_eq!(sensitivity_table(&grid).len(), 4);
    }

    #[test]
    fn churn_row_banks_updates_and_migrates() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let args = smoke_args();
        let churn = eval_scenario(&ds, Scenario::Churn, &args);
        assert!(churn.dropped_device_rounds > 0, "churn must bite");
        assert!(
            churn.buffered_updates > 0,
            "churned stragglers must land in the buffer"
        );
        assert_eq!(churn.wasted_updates, 0);
        assert!(
            churn.migrated_nodes > 0,
            "sustained absence must trigger live migration"
        );
    }

    #[test]
    fn json_document_is_well_formed() {
        let args = smoke_args();
        let rows = vec![
            HeteroRow {
                dataset: "facebook-smoke".into(),
                scenario: Scenario::Uniform,
                makespan_tree_nodes: 10.25,
                makespan_virtual_secs: 10.25,
                makespan_deadline: 10.25,
                makespan_buffered: 10.25,
                makespan_async: 10.25,
                makespan_untrimmed: 20.5,
                utilization_tree_nodes: 0.8,
                utilization_virtual_secs: 0.8,
                utilization_untrimmed: 0.5,
                dominant_straggler: Some((3, 5)),
                dropped_device_rounds: 0,
                late_drops: 0,
                buffered_updates: 0,
                wasted_updates: 0,
                migrated_nodes: 0,
                async_carried: 0,
                async_late_drops: 0,
                async_wasted: 0,
            },
            HeteroRow {
                dataset: "facebook-smoke".into(),
                scenario: Scenario::StragglerTail,
                makespan_tree_nodes: 40.0,
                makespan_virtual_secs: 31.5,
                makespan_deadline: 12.5,
                makespan_buffered: 13.0,
                makespan_async: 14.0,
                makespan_untrimmed: 90.0,
                utilization_tree_nodes: 0.3,
                utilization_virtual_secs: 0.4,
                utilization_untrimmed: 0.2,
                dominant_straggler: None,
                dropped_device_rounds: 7,
                late_drops: 11,
                buffered_updates: 9,
                wasted_updates: 0,
                migrated_nodes: 4,
                async_carried: 6,
                async_late_drops: 0,
                async_wasted: 0,
            },
        ];
        let grid = vec![SensitivityRow {
            dataset: "facebook-smoke".into(),
            scenario: Scenario::StragglerTail,
            decay: 0.3,
            threshold: 1.5,
            patience: 1,
            accuracy: 0.61,
            makespan: 12.75,
            buffered_updates: 9,
            migrated_nodes: 2,
        }];
        let json = to_json(&rows, &grid, &args);
        // Structural sanity without a JSON parser in the tree: balanced
        // delimiters, both scenario rows present, nulls where expected.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"fig8_hetero\""));
        assert!(json.contains("\"scenario\": \"straggler-tail\""));
        assert!(json.contains("\"dominant_straggler\": null"));
        assert!(json.contains("\"weighted_win_secs\": 8.5"));
        assert!(json.contains("\"deadline_win_secs\": 27.5"));
        assert!(json.contains("\"buffered_win_secs\": 27.0"));
        assert!(json.contains("\"async_win_secs\": 26.0"));
        assert!(json.contains("\"late_drops\": 11"));
        assert!(json.contains("\"buffered_updates\": 9"));
        assert!(json.contains("\"wasted_updates\": 0"));
        assert!(json.contains("\"migrated_nodes\": 4"));
        assert!(json.contains("\"async_carried\": 6"));
        assert!(json.contains("\"async_late_drops\": 0"));
        assert!(json.contains("\"sensitivity\": ["));
        assert!(json.contains("\"decay\": 0.3"));
        assert!(json.contains("\"threshold\": 1.5"));
        assert!(json.contains("\"accuracy\": 0.61"));
        assert!(json.ends_with("}\n"));
        // An empty grid must still be a well-formed (empty) array.
        let empty = to_json(&rows, &[], &args);
        assert!(empty.contains("\"sensitivity\": [\n  ]"));
        assert_eq!(empty.matches('{').count(), empty.matches('}').count());
    }
}
