//! Figure 8 extension: system cost across heterogeneous-device scenarios.
//!
//! The paper evaluates tree trimming on identical devices (Fig. 8). This
//! sweep replays the same workload through `lumos-sim` under each
//! [`Scenario`] preset and reports the simulated epoch makespan with and
//! without trimming. Two claims become measurable: the makespan ordering
//! `Uniform < StragglerTail` for the same workload, and the growth of
//! trimming's win as capability heterogeneity compounds the degree
//! heterogeneity the trimmer targets.

use lumos_common::table::{fmt2, Table};
use lumos_core::{run_lumos, LumosConfig, SimSummary, TaskKind};
use lumos_data::Dataset;
use lumos_gnn::Backbone;
use lumos_sim::Scenario;

use crate::args::HarnessArgs;
use crate::presets::{mcmc_iterations_for, run_pair};

/// One scenario's cost comparison (trimmed vs untrimmed).
#[derive(Debug, Clone)]
pub struct HeteroRow {
    /// Dataset name.
    pub dataset: String,
    /// Device scenario.
    pub scenario: Scenario,
    /// Simulated seconds per epoch with tree trimming.
    pub makespan_trimmed: f64,
    /// Simulated seconds per epoch without tree trimming.
    pub makespan_untrimmed: f64,
    /// Mean device utilization with trimming.
    pub utilization_trimmed: f64,
    /// Mean device utilization without trimming.
    pub utilization_untrimmed: f64,
    /// Most frequent straggler (device id, epochs straggled) with trimming.
    pub dominant_straggler: Option<(u32, usize)>,
    /// Device-rounds lost to churn.
    pub dropped_device_rounds: u64,
}

impl HeteroRow {
    /// Percentage of simulated epoch time trimming saves in this scenario.
    pub fn saved_pct(&self) -> f64 {
        if self.makespan_untrimmed == 0.0 {
            0.0
        } else {
            (self.makespan_untrimmed - self.makespan_trimmed) / self.makespan_untrimmed * 100.0
        }
    }

    /// Absolute simulated seconds per epoch trimming saves — the win that
    /// grows as capability heterogeneity compounds degree heterogeneity.
    pub fn saved_secs(&self) -> f64 {
        self.makespan_untrimmed - self.makespan_trimmed
    }
}

/// Epochs per measurement: makespan statistics stabilize quickly and do
/// not depend on convergence.
const COST_EPOCHS: usize = 8;

fn summary(ds: &Dataset, base: &LumosConfig, trim: bool) -> SimSummary {
    let cfg = if trim {
        base.clone()
    } else {
        base.clone().without_tree_trimming()
    };
    run_lumos(ds, &cfg)
        .sim
        .expect("scenario configs always produce a sim summary")
}

fn eval_scenario(ds: &Dataset, scenario: Scenario, args: &HarnessArgs) -> HeteroRow {
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(COST_EPOCHS)
        .with_mcmc_iterations(mcmc_iterations_for(args.scale, &ds.name))
        .with_seed(args.seed)
        .with_scenario(scenario);
    let (trimmed, untrimmed) = run_pair(|| summary(ds, &base, true), || summary(ds, &base, false));
    HeteroRow {
        dataset: ds.name.clone(),
        scenario,
        makespan_trimmed: trimmed.avg_epoch_virtual_secs,
        makespan_untrimmed: untrimmed.avg_epoch_virtual_secs,
        utilization_trimmed: trimmed.mean_utilization,
        utilization_untrimmed: untrimmed.mean_utilization,
        dominant_straggler: trimmed.dominant_straggler(),
        dropped_device_rounds: trimmed.dropped_device_rounds,
    }
}

/// Runs the scenario sweep on the primary dataset.
pub fn run(args: &HarnessArgs) -> Vec<HeteroRow> {
    let ds = Dataset::facebook_like(args.scale);
    Scenario::ALL
        .iter()
        .map(|&s| eval_scenario(&ds, s, args))
        .collect()
}

/// Renders the sweep as one table row per scenario.
pub fn table(rows: &[HeteroRow]) -> Table {
    let mut t = Table::new(
        "Figure 8 (hetero): simulated epoch makespan by device scenario",
        &[
            "dataset",
            "scenario",
            "epoch secs (sim)",
            "epoch secs w.o. TT",
            "saved secs",
            "saved %",
            "utilization",
            "util w.o. TT",
            "top straggler",
            "dropped dev-rounds",
        ],
    );
    for r in rows {
        t.push_row([
            r.dataset.clone(),
            r.scenario.name().to_string(),
            fmt2(r.makespan_trimmed),
            fmt2(r.makespan_untrimmed),
            fmt2(r.saved_secs()),
            fmt2(r.saved_pct()),
            fmt2(r.utilization_trimmed),
            fmt2(r.utilization_untrimmed),
            r.dominant_straggler
                .map_or("n/a".to_string(), |(d, c)| format!("dev {d} ×{c}")),
            r.dropped_device_rounds.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_data::Scale;

    fn smoke_args() -> HarnessArgs {
        HarnessArgs {
            scale: Scale::Smoke,
            seed: 8,
            quick: false,
        }
    }

    #[test]
    fn heterogeneity_raises_makespan_and_trimming_still_wins() {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let args = smoke_args();
        let uniform = eval_scenario(&ds, Scenario::Uniform, &args);
        let tail = eval_scenario(&ds, Scenario::StragglerTail, &args);
        // Same workload, slower tail ⇒ strictly larger simulated makespan.
        assert!(
            uniform.makespan_trimmed < tail.makespan_trimmed,
            "uniform {} must undercut straggler-tail {}",
            uniform.makespan_trimmed,
            tail.makespan_trimmed
        );
        // Trimming reduces the simulated makespan in both regimes.
        for r in [&uniform, &tail] {
            assert!(
                r.makespan_trimmed < r.makespan_untrimmed,
                "{}: trimmed {} vs untrimmed {}",
                r.scenario.name(),
                r.makespan_trimmed,
                r.makespan_untrimmed
            );
            assert!(r.saved_pct() > 0.0);
        }
        // Trimming's absolute makespan win grows with heterogeneity: the
        // straggler's tree shrinks, and on a slow device every trimmed
        // node is worth more virtual seconds.
        assert!(
            tail.saved_secs() > uniform.saved_secs(),
            "saved secs must grow with heterogeneity: {} vs {}",
            tail.saved_secs(),
            uniform.saved_secs()
        );
        assert_eq!(table(&[uniform, tail]).len(), 2);
    }
}
