//! Cost of the workload balancer: greedy initialization, Algorithm 3, and
//! MCMC iterations — including the greedy-vs-raw ablation called out in
//! DESIGN.md.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_balance::{
    find_max_workload_device, greedy_init, mcmc_balance, Assignment, McmcConfig, MeteredPlainOracle,
};
use lumos_common::rng::Xoshiro256pp;
use lumos_data::{Dataset, Scale};

fn bench_greedy(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    c.bench_function("greedy_init_smoke", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            black_box(greedy_init(&ds.graph, &mut oracle))
        })
    });
}

fn bench_alg3(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let assignment = Assignment::full(&ds.graph);
    c.bench_function("find_max_workload_smoke", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            black_box(find_max_workload_device(
                &ds.graph,
                &assignment,
                &mut oracle,
                &mut rng,
            ))
        })
    });
}

fn bench_mcmc(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    // Ablation: MCMC seeded by greedy vs from the raw full assignment.
    c.bench_function("mcmc_30_iters_after_greedy", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            let init = greedy_init(&ds.graph, &mut oracle);
            let cfg = McmcConfig {
                iterations: 30,
                seed: 1,
            };
            black_box(mcmc_balance(&ds.graph, init, &cfg, &mut oracle))
        })
    });
    c.bench_function("mcmc_30_iters_from_full", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            let init = Assignment::full(&ds.graph);
            let cfg = McmcConfig {
                iterations: 30,
                seed: 1,
            };
            black_box(mcmc_balance(&ds.graph, init, &cfg, &mut oracle))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_greedy, bench_alg3, bench_mcmc
}
criterion_main!(benches);
