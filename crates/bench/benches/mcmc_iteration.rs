//! Cost of the workload balancer: greedy initialization, Algorithm 3, and
//! MCMC iterations — including the greedy-vs-raw ablation called out in
//! DESIGN.md.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_balance::{
    find_max_workload_device, greedy_init, greedy_init_weighted, make_oracle_backend, mcmc_balance,
    Assignment, CompareBackend, McmcConfig, MeteredPlainOracle, SecurityMode,
};
use lumos_common::rng::Xoshiro256pp;
use lumos_data::{Dataset, Scale};
use lumos_graph::generate::erdos_renyi;

fn bench_greedy(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    c.bench_function("greedy_init_smoke", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            black_box(greedy_init(&ds.graph, &mut oracle))
        })
    });
}

fn bench_alg3(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let assignment = Assignment::full(&ds.graph);
    c.bench_function("find_max_workload_smoke", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            black_box(find_max_workload_device(
                &ds.graph,
                &assignment,
                &mut oracle,
                &mut rng,
            ))
        })
    });
}

fn bench_mcmc(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    // Ablation: MCMC seeded by greedy vs from the raw full assignment.
    c.bench_function("mcmc_30_iters_after_greedy", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            let init = greedy_init(&ds.graph, &mut oracle);
            let cfg = McmcConfig {
                iterations: 30,
                seed: 1,
            };
            black_box(mcmc_balance(&ds.graph, init, &cfg, &mut oracle))
        })
    });
    c.bench_function("mcmc_30_iters_from_full", |b| {
        b.iter(|| {
            let mut oracle = MeteredPlainOracle::new();
            let init = Assignment::full(&ds.graph);
            let cfg = McmcConfig {
                iterations: 30,
                seed: 1,
            };
            black_box(mcmc_balance(&ds.graph, init, &cfg, &mut oracle))
        })
    });
}

/// Scalar-vs-bitsliced pair under the *real* OT circuits on the 48-bit
/// weighted lane: the Algorithm-3 edge sweeps dominate, and the bit-sliced
/// backend packs them 64 comparisons per circuit.
fn bench_mcmc_backends(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let g = erdos_renyi(48, 0.12, &mut rng);
    let costs: Vec<u64> = (0..g.num_nodes()).map(|_| rng.range_u64(1, 1000)).collect();
    for backend in [CompareBackend::Scalar, CompareBackend::Bitsliced] {
        c.bench_function(&format!("mcmc_5_iters_secure_{}", backend.name()), |b| {
            b.iter(|| {
                let mut oracle = make_oracle_backend(SecurityMode::Simulated, backend, 1);
                let init = greedy_init_weighted(&g, Some(&costs), oracle.as_mut());
                let cfg = McmcConfig {
                    iterations: 5,
                    seed: 1,
                };
                black_box(mcmc_balance(&g, init, &cfg, oracle.as_mut()))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_greedy, bench_alg3, bench_mcmc, bench_mcmc_backends
}
criterion_main!(benches);
