//! Cost and variance of the LDP feature encoders, including the
//! binned-vs-full ablation of §VI-A.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_common::rng::Xoshiro256pp;
use lumos_ldp::{FeatureEncoder, OneBitMechanism};

fn bench_onebit(c: &mut Criterion) {
    let mech = OneBitMechanism::new(0.1, 0.0, 1.0);
    c.bench_function("onebit_encode_decode", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| black_box(mech.decode(mech.encode(0.42, &mut rng))))
    });
}

fn bench_binned_vs_full(c: &mut Criterion) {
    let dim = 192;
    let wl = 8;
    let enc = FeatureEncoder::new(2.0, wl, dim, 0.0, 1.0);
    let feature: Vec<f32> = (0..dim).map(|i| (i % 7) as f32 / 7.0).collect();
    c.bench_function("encode_binned_192d_8bins", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        b.iter(|| black_box(enc.encode_binned(&feature, &mut rng)))
    });
    c.bench_function("encode_full_192d_8copies", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        b.iter(|| black_box(enc.encode_full(&feature, 2.0, &mut rng)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_onebit, bench_binned_vs_full
}
criterion_main!(benches);
