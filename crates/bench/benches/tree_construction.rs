//! Cost of building device trees and the batched forest.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_common::rng::Xoshiro256pp;
use lumos_core::{build_batched, exchange_features, DeviceTree, LocalGraphKind};
use lumos_data::{Dataset, Scale};
use lumos_fed::SimNetwork;

fn bench_device_tree(c: &mut Criterion) {
    c.bench_function("device_tree_wl32", |b| {
        let neighbors: Vec<u32> = (1..=32).collect();
        b.iter(|| {
            black_box(DeviceTree::with_virtual_nodes(
                0,
                black_box(neighbors.clone()),
            ))
        })
    });
}

fn bench_batched_forest(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let trees: Vec<DeviceTree> = (0..ds.num_nodes() as u32)
        .map(|v| {
            DeviceTree::build(
                LocalGraphKind::VirtualNodeTree,
                v,
                ds.graph.neighbors(v).to_vec(),
            )
        })
        .collect();
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let mut net = SimNetwork::new(ds.num_nodes());
    let exchange = exchange_features(
        &ds.features,
        ds.feature_dim,
        &trees,
        2.0,
        &mut rng,
        &mut net,
    );
    c.bench_function("build_batched_forest_smoke", |b| {
        b.iter(|| {
            black_box(build_batched(
                &trees,
                &ds.features,
                ds.feature_dim,
                &exchange,
            ))
        })
    });
}

fn bench_ldp_exchange(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let trees: Vec<DeviceTree> = (0..ds.num_nodes() as u32)
        .map(|v| {
            DeviceTree::build(
                LocalGraphKind::VirtualNodeTree,
                v,
                ds.graph.neighbors(v).to_vec(),
            )
        })
        .collect();
    c.bench_function("ldp_feature_exchange_smoke", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        b.iter(|| {
            let mut net = SimNetwork::new(ds.num_nodes());
            black_box(exchange_features(
                &ds.features,
                ds.feature_dim,
                &trees,
                2.0,
                &mut rng,
                &mut net,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_device_tree, bench_batched_forest, bench_ldp_exchange
}
criterion_main!(benches);
