//! `cargo bench` coverage of the figure harness itself: regenerates the
//! structural figures (dataset table, Fig. 7 CDFs) at smoke scale and a
//! quick Fig. 8 cost comparison. The accuracy figures (3–6) are regenerated
//! by the `run_all` binary — training to convergence inside Criterion would
//! be meaningless timing-wise.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_bench::{fig7, fig8, table1, HarnessArgs};
use lumos_data::Scale;

fn smoke_args() -> HarnessArgs {
    HarnessArgs {
        scale: Scale::Smoke,
        seed: 1,
        quick: true,
        json: None,
        sensitivity: false,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table_datasets_smoke", |b| {
        b.iter(|| black_box(table1::run(Scale::Smoke)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_workload_cdf_smoke", |b| {
        let args = smoke_args();
        b.iter(|| black_box(fig7::run(&args)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_system_cost_smoke_quick", |b| {
        let args = smoke_args();
        b.iter(|| black_box(fig8::run(&args)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig7, bench_fig8
}
criterion_main!(benches);
