//! Cost of the secure two-party protocols behind the tree constructor.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_common::rng::Xoshiro256pp;
use lumos_crypto::{
    ot_transfer, secure_compare, secure_compare_batch, secure_difference, CommMeter, OtDealer,
    TwoParty,
};

fn bench_ot(c: &mut Criterion) {
    c.bench_function("ot_transfer", |b| {
        let mut dealer = OtDealer::new(7);
        let mut meter = CommMeter::new();
        b.iter(|| black_box(ot_transfer(1, 2, true, &mut dealer, &mut meter)))
    });
}

fn bench_compare(c: &mut Criterion) {
    for bits in [8u32, 16, 32] {
        c.bench_function(&format!("secure_compare_{bits}bit"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut ctx = TwoParty::new(seed);
                black_box(secure_compare(&mut ctx, 123 % (1 << (bits - 1)), 99, bits))
            })
        });
    }
}

/// Scalar-vs-bitsliced pair on the 48-bit weighted-workload lane: the same
/// 256 independent comparisons evaluated one circuit per pair vs 64 lanes
/// per word (4 words total).
fn bench_compare_batch(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(2023);
    let pairs: Vec<(u64, u64)> = (0..256)
        .map(|_| (rng.next_below(1 << 48), rng.next_below(1 << 48)))
        .collect();
    c.bench_function("compare_256x48bit_scalar", |b| {
        b.iter(|| {
            for (i, &(x, y)) in pairs.iter().enumerate() {
                let mut ctx = TwoParty::new(i as u64);
                black_box(secure_compare(&mut ctx, x, y, 48));
            }
        })
    });
    c.bench_function("compare_256x48bit_bitsliced", |b| {
        b.iter(|| black_box(secure_compare_batch(7, &pairs, 48)))
    });
}

fn bench_difference(c: &mut Criterion) {
    c.bench_function("secure_difference", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut ctx = TwoParty::new(seed);
            black_box(secure_difference(&mut ctx, 1234, 987))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ot, bench_compare, bench_compare_batch, bench_difference
}
criterion_main!(benches);
