//! Cost of the secure two-party protocols behind the tree constructor.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_crypto::{ot_transfer, secure_compare, secure_difference, CommMeter, OtDealer, TwoParty};

fn bench_ot(c: &mut Criterion) {
    c.bench_function("ot_transfer", |b| {
        let mut dealer = OtDealer::new(7);
        let mut meter = CommMeter::new();
        b.iter(|| black_box(ot_transfer(1, 2, true, &mut dealer, &mut meter)))
    });
}

fn bench_compare(c: &mut Criterion) {
    for bits in [8u32, 16, 32] {
        c.bench_function(&format!("secure_compare_{bits}bit"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut ctx = TwoParty::new(seed);
                black_box(secure_compare(&mut ctx, 123 % (1 << (bits - 1)), 99, bits))
            })
        });
    }
}

fn bench_difference(c: &mut Criterion) {
    c.bench_function("secure_difference", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut ctx = TwoParty::new(seed);
            black_box(secure_difference(&mut ctx, 1234, 987))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ot, bench_compare, bench_difference
}
criterion_main!(benches);
