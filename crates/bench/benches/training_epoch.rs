//! Cost of one full training run at smoke scale: Lumos (trimmed vs
//! untrimmed trees) and the centralized reference.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_baselines::{run_centralized, BaselineConfig};
use lumos_core::{run_lumos, LumosConfig, TaskKind};
use lumos_data::{Dataset, Scale};
use lumos_gnn::Backbone;

fn bench_epoch(c: &mut Criterion) {
    let ds = Dataset::facebook_like(Scale::Smoke);
    // Three epochs per iteration: setup cost amortized, per-epoch time is
    // the dominant term (Fig. 8b's quantity).
    c.bench_function("lumos_3_epochs_smoke_trimmed", |b| {
        b.iter(|| {
            let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
                .with_epochs(3)
                .with_mcmc_iterations(10);
            black_box(run_lumos(&ds, &cfg))
        })
    });
    c.bench_function("lumos_3_epochs_smoke_untrimmed", |b| {
        b.iter(|| {
            let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
                .with_epochs(3)
                .with_mcmc_iterations(10)
                .without_tree_trimming();
            black_box(run_lumos(&ds, &cfg))
        })
    });
    c.bench_function("centralized_3_epochs_smoke", |b| {
        b.iter(|| {
            let cfg = BaselineConfig::new(Backbone::Gcn, TaskKind::Supervised).with_epochs(3);
            black_box(run_centralized(&ds, &cfg))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_epoch
}
criterion_main!(benches);
