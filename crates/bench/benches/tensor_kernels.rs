//! Microbenchmarks of the tensor kernels that dominate a training epoch.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_common::rng::Xoshiro256pp;
use lumos_tensor::kernels::{gather_rows, scatter_add_rows, segment_softmax};
use lumos_tensor::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let a = Tensor::rand_uniform(2048, 192, -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(192, 16, -1.0, 1.0, &mut rng);
    c.bench_function("matmul_2048x192x16", |b| {
        b.iter(|| black_box(a.matmul(black_box(&w))))
    });
    let g = Tensor::rand_uniform(2048, 16, -1.0, 1.0, &mut rng);
    c.bench_function("matmul_tn_backward_2048x192x16", |b| {
        b.iter(|| black_box(a.matmul_tn(black_box(&g))))
    });
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let x = Tensor::rand_uniform(4096, 16, -1.0, 1.0, &mut rng);
    let idx: Vec<u32> = (0..12_288).map(|_| rng.next_below(4096) as u32).collect();
    c.bench_function("gather_rows_12k_of_4k", |b| {
        b.iter(|| black_box(gather_rows(black_box(&x), black_box(&idx))))
    });
    let msgs = gather_rows(&x, &idx);
    c.bench_function("scatter_add_rows_12k_into_4k", |b| {
        b.iter(|| black_box(scatter_add_rows(black_box(&msgs), black_box(&idx), 4096)))
    });
}

fn bench_segment_softmax(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let logits = Tensor::rand_uniform(12_288, 4, -2.0, 2.0, &mut rng);
    let mut seg: Vec<u32> = (0..12_288).map(|_| rng.next_below(4096) as u32).collect();
    seg.sort_unstable();
    c.bench_function("segment_softmax_12k_arcs_4_heads", |b| {
        b.iter(|| black_box(segment_softmax(black_box(&logits), black_box(&seg), 4096)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_gather_scatter, bench_segment_softmax
}
criterion_main!(benches);
