//! Cost of one discrete-event epoch simulation: the aggregate (self-timed)
//! inbound schedule vs the per-destination schedule, at small and large
//! fleets. The per-destination path schedules one arrival event per
//! `(sender → receiver)` edge and a transpose pass, so this pins the price
//! of the corrected timing signal as the fleet scales.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_common::rng::Xoshiro256pp;
use lumos_sim::{simulate_epoch, DeviceProfile, DeviceWork, FleetSpec, Heterogeneity, Inbound};

/// Fan-in of each device's inbound side in the per-destination workload
/// (mirrors the trainer: a device receives from its retained neighbors).
const FAN_IN: u64 = 8;

fn fleet(n: usize) -> Vec<DeviceProfile> {
    let spec = FleetSpec {
        base: DeviceProfile::baseline(),
        compute: Heterogeneity::Pareto { alpha: 1.1 },
        link: Heterogeneity::Jitter { spread: 0.25 },
        dropout: 0.0,
        rejoin: 1.0,
    };
    spec.sample_fleet(n, &mut Xoshiro256pp::seed_from_u64(0xBE_EF))
}

fn aggregate_work(n: usize) -> Vec<DeviceWork> {
    let mut rng = Xoshiro256pp::seed_from_u64(0xF00D);
    (0..n)
        .map(|_| {
            DeviceWork::aggregate(
                rng.range_f64(10.0, 500.0),
                FAN_IN + 1,
                64 * (FAN_IN + 1),
                64 * FAN_IN,
            )
        })
        .collect()
}

fn per_destination_work(n: usize) -> Vec<DeviceWork> {
    aggregate_work(n)
        .into_iter()
        .enumerate()
        .map(|(d, w)| DeviceWork {
            // Ring fan-in: bytes arrive from the FAN_IN preceding devices.
            inbound: Inbound::PerSender(
                (1..=FAN_IN)
                    .map(|k| (((d as u64 + n as u64 - k) % n as u64) as u32, 64))
                    .collect(),
            ),
            ..w
        })
        .collect()
}

fn bench_sim_epoch(c: &mut Criterion) {
    for n in [256usize, 4096] {
        let profiles = fleet(n);
        let aggregate = aggregate_work(n);
        let per_destination = per_destination_work(n);
        c.bench_function(&format!("sim_epoch_aggregate_{n}"), |b| {
            b.iter(|| black_box(simulate_epoch(&profiles, black_box(&aggregate))))
        });
        c.bench_function(&format!("sim_epoch_per_destination_{n}"), |b| {
            b.iter(|| black_box(simulate_epoch(&profiles, black_box(&per_destination))))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sim_epoch
}
criterion_main!(benches);
