//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small slice of criterion's API that the `lumos-bench` targets use:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both the plain and the
//! `name`/`config`/`targets` forms). Timing is a straightforward
//! warmup-then-sample wall-clock measurement; it reports mean, min and max
//! per-iteration times. Swapping back to the real criterion is a
//! one-line `Cargo.toml` change — no bench source needs to be touched.

use std::time::{Duration, Instant};

/// Benchmark driver: collects named benchmark functions and times them.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut list_only = false;
        // Cargo invokes bench executables with `--bench`; when run as a test
        // (`cargo test --benches`) it passes `--test`. A bare positional
        // argument is a name filter, as with the real criterion.
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--quiet" | "-q" | "--verbose" | "--noplot"
                | "--discard-baseline" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--color" => {
                    let _ = args.next();
                }
                "--list" => list_only = true,
                s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
            filter,
            list_only,
        }
    }
}

impl Criterion {
    /// Set the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration before samples are recorded.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time `f` and print a one-line summary, criterion-style.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return self;
        }

        // Warm-up: run until the warm-up budget elapses, and use the
        // observed per-iteration time to size the measurement batches.
        let mut bencher = Bencher::new();
        #[allow(clippy::disallowed_methods)] // benchmark harness: timing is the point
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.target_iters = iters_per_sample;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(samples[0]),
            fmt_time(mean),
            fmt_time(*samples.last().unwrap()),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark timing context handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    target_iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: 1,
        }
    }

    /// Time repeated calls of `routine`, keeping its output alive so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let n = self.target_iters;
        #[allow(clippy::disallowed_methods)] // benchmark harness: timing is the point
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group. Supports both criterion forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark executable's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
