//! Deterministic RNG used to sample property-test cases.

/// SplitMix64 generator, seeded from the test's name so every run of a
/// given property sees the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash), giving each property its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` (bound > 0) without modulo bias worth
    /// caring about at test scale.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
