//! Value-generation strategies: half-open ranges and `any::<T>()`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values for one property-test binding.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Emit the exact endpoints now and then: float properties
                // break at the boundary far more often than in the middle.
                match rng.next_below(16) {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.next_f64() as $t) * (hi - lo),
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types that `any::<T>()` can produce uniformly at random.
pub trait Arbitrary {
    /// Draw one value covering the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full range of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
