//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the slice of proptest's API that the workspace tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and [`any`] strategies, and
//! [`ProptestConfig::with_cases`]. Sampling is deterministic: each test
//! derives its RNG seed from its own name, so a failure reproduces exactly
//! on re-run. There is no shrinking — a failing case panics with the
//! sampled values available via the assertion message.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Strategy};
pub use test_runner::TestRng;

/// Per-test configuration. Only `cases` is honored by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests. Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, seed in any::<u64>()) { ... }
/// }
/// ```
///
/// Each `name in strategy` binding samples a fresh value per case from a
/// deterministic, test-name-seeded RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}
