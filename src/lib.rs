//! Facade crate re-exporting the Lumos public API.

#![forbid(unsafe_code)]

pub use lumos_balance as balance;
pub use lumos_baselines as baselines;
pub use lumos_common as common;
pub use lumos_core as core;
pub use lumos_crypto as crypto;
pub use lumos_data as data;
pub use lumos_fed as fed;
pub use lumos_gnn as gnn;
pub use lumos_graph as graph;
pub use lumos_ldp as ldp;
pub use lumos_sim as sim;
pub use lumos_tensor as tensor;
pub use lumos_topo as topo;
