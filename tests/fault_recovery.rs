//! Fault-injection & recovery properties at the `run_lumos` level.
//!
//! PR 10 added a seeded fault-injection subsystem (mid-round crashes,
//! message loss with retry/backoff recovery, aggregator outage failover).
//! These properties pin its three contracts:
//!
//! 1. **Opt-in**: `FaultSpec::None` — and even a zero-rate
//!    `FaultSpec::Faults` — is bit-identical to the seed path on every
//!    scenario preset;
//! 2. **No lost updates**: total message loss with an unbounded retry
//!    budget still terminates (the hard retry cap exhausts the send) and
//!    every exhausted upload degrades into the staleness buffer;
//! 3. **Failover conservation**: an aggregator outage re-homes its shard
//!    without touching the training math — the tiered POOL stays
//!    sum-conserving, so the learned model is bit-identical to the same
//!    faulted run without the outage.

use lumos::core::{run_lumos, LumosConfig, RunReport, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;
use lumos::sim::{FaultSpec, OutageWindow, RecoveryPolicy, Scenario, HARD_RETRY_CAP};
use lumos::topo::TopologyConfig;
use proptest::prelude::*;

fn base_config(seed: u64) -> LumosConfig {
    LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(4)
        .with_mcmc_iterations(10)
        .with_seed(seed)
}

/// Every deterministic field of the two reports, bitwise. Wall-clock
/// fields are the only exempt ones.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
    assert_eq!(a.best_val_metric.to_bits(), b.best_val_metric.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(
            ha.loss.to_bits(),
            hb.loss.to_bits(),
            "loss diverged at epoch {}",
            ha.epoch
        );
        assert_eq!(ha.val_metric.to_bits(), hb.val_metric.to_bits());
    }
    assert_eq!(
        a.avg_messages_per_device_per_epoch.to_bits(),
        b.avg_messages_per_device_per_epoch.to_bits()
    );
    assert_eq!(
        a.avg_epoch_makespan.to_bits(),
        b.avg_epoch_makespan.to_bits()
    );
    assert_eq!(a.sim, b.sim, "simulation summaries must agree exactly");
}

const PRESETS: [Scenario; 4] = [
    Scenario::Uniform,
    Scenario::MobileFleet,
    Scenario::StragglerTail,
    Scenario::Churn,
];

#[test]
fn a_none_fault_spec_is_bit_identical_to_the_seed_on_every_preset() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    for scenario in PRESETS {
        let cfg = base_config(11).with_scenario(scenario);
        let seed_path = run_lumos(&ds, &cfg);
        // A non-default recovery policy must be inert too: it is only
        // consulted once a fault spec is actually set.
        let none = run_lumos(
            &ds,
            &cfg.clone()
                .with_faults(FaultSpec::None)
                .with_recovery(RecoveryPolicy {
                    retry_budget: 9,
                    ..RecoveryPolicy::default()
                }),
        );
        assert_reports_identical(&seed_path, &none);
        let sim = none.sim.expect("scenario run reports sim stats");
        assert_eq!(sim.lost_messages, 0);
        assert_eq!(sim.retries, 0);
        assert_eq!(sim.crashed_devices, 0);
        assert_eq!(sim.failovers, 0);
    }
}

#[test]
fn zero_rate_faults_take_the_fault_path_and_stay_bit_identical() {
    // `Faults { 0, 0, 0, [] }` is NOT `FaultSpec::None`: it builds the
    // fault state, re-routes every epoch through the buffering machinery
    // and the faulted runtime constructors — and every one of those hops
    // must still reproduce the seed bit for bit when nothing fires.
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = base_config(12).with_scenario(Scenario::StragglerTail);
    let seed_path = run_lumos(&ds, &cfg);
    let zero = run_lumos(
        &ds,
        &cfg.clone().with_faults(FaultSpec::Faults {
            crash_rate: 0.0,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            outages: vec![],
        }),
    );
    assert_reports_identical(&seed_path, &zero);
}

#[test]
fn total_loss_with_an_unbounded_budget_terminates_into_the_buffer() {
    // Loss rate 1.0: every upload attempt is lost, forever. An unbounded
    // retry budget must still terminate — the hard retry cap exhausts the
    // send — and the exhausted update degrades into the staleness buffer
    // instead of vanishing.
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = base_config(13)
        .with_scenario(Scenario::StragglerTail)
        .with_faults(FaultSpec::message_loss(1.0))
        .with_recovery(RecoveryPolicy {
            retry_budget: u32::MAX,
            ..RecoveryPolicy::default()
        });
    let report = run_lumos(&ds, &cfg);
    let sim = report.sim.expect("scenario run reports sim stats");
    let n = ds.num_nodes() as u64;
    let epochs = 4u64;
    // Every device retries to the cap every round, then exhausts.
    assert_eq!(sim.retries, n * epochs * HARD_RETRY_CAP as u64);
    // Each attempt (initial + every retry) is lost.
    assert_eq!(sim.lost_messages, n * epochs * (HARD_RETRY_CAP as u64 + 1));
    assert!(sim.retry_secs > 0.0, "backoff waits must be priced");
    assert_eq!(sim.crashed_devices, 0);
    assert!(
        sim.buffered_updates >= n * (epochs - 1),
        "every exhausted upload must land in the staleness buffer, got {}",
        sim.buffered_updates
    );
    assert_eq!(sim.wasted_updates, 0, "recovery never discards an update");
}

#[test]
fn failover_conserves_the_training_math_and_counts_shard_rounds() {
    // An outage window changes who serves the shard — routing and timing
    // only. The tiered POOL still sums every member exactly once, so the
    // learned model must be bit-identical to the same run without the
    // outage, while the failover counter records each re-homed
    // shard-round.
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = base_config(14)
        .with_scenario(Scenario::StragglerTail)
        .with_topology(TopologyConfig::Hierarchical { aggregators: 4 });
    let zero_faults = FaultSpec::Faults {
        crash_rate: 0.0,
        loss_rate: 0.0,
        duplicate_rate: 0.0,
        outages: vec![],
    };
    let calm = run_lumos(&ds, &cfg.clone().with_faults(zero_faults));
    let outaged = run_lumos(
        &ds,
        &cfg.clone().with_faults(FaultSpec::Faults {
            crash_rate: 0.0,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            outages: vec![OutageWindow {
                aggregator: 1,
                from_round: 1,
                until_round: 3,
            }],
        }),
    );
    assert_eq!(calm.test_metric.to_bits(), outaged.test_metric.to_bits());
    assert_eq!(calm.final_loss().to_bits(), outaged.final_loss().to_bits());
    let (cs, os) = (calm.sim.unwrap(), outaged.sim.unwrap());
    assert_eq!(cs.failovers, 0);
    assert_eq!(os.failovers, 2, "one re-homed shard in rounds 1 and 2");
    // Device-tier traffic is untouched: members upload the same updates,
    // just routed to the successor (aggregator partials are tier-2 ledger
    // traffic, not device messages).
    assert_eq!(
        calm.avg_messages_per_device_per_epoch.to_bits(),
        outaged.avg_messages_per_device_per_epoch.to_bits()
    );
    // And the round's makespan never shrinks below the calm run's: the
    // successor still waits for every re-homed member.
    assert!(os.total_virtual_secs >= cs.total_virtual_secs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed + same spec ⇒ bit-identical reports, recovery counters
    /// included — the acceptance criterion for reproducible chaos runs.
    #[test]
    fn faulted_runs_are_seed_deterministic(seed in 1u64..1000) {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = base_config(seed)
            .with_scenario(Scenario::Churn)
            .with_faults(FaultSpec::Faults {
                crash_rate: 0.05,
                loss_rate: 0.15,
                duplicate_rate: 0.02,
                outages: vec![],
            });
        let a = run_lumos(&ds, &cfg);
        let b = run_lumos(&ds, &cfg);
        assert_reports_identical(&a, &b);
        let sim = a.sim.expect("scenario run reports sim stats");
        prop_assert!(
            sim.lost_messages > 0 || sim.crashed_devices > 0,
            "15% loss + 5% crash over 4 rounds should fire at least once"
        );
    }
}
