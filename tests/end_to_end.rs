//! Cross-crate integration tests: the full Lumos pipeline plus baselines,
//! exercised end to end at smoke scale through the `lumos` facade.

use lumos::baselines::{run_centralized, BaselineConfig};
use lumos::core::{run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;

fn lumos_cfg(backbone: Backbone, task: TaskKind) -> LumosConfig {
    LumosConfig::new(backbone, task)
        .with_epochs(25)
        .with_mcmc_iterations(25)
        .with_seed(99)
}

#[test]
fn gcn_and_gat_both_train_supervised() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    for backbone in [Backbone::Gcn, Backbone::Gat] {
        let report = run_lumos(&ds, &lumos_cfg(backbone, TaskKind::Supervised));
        assert!(
            report.test_metric > 0.3,
            "{}: accuracy {}",
            backbone.name(),
            report.test_metric
        );
        assert_eq!(report.backbone, backbone.name());
        assert_eq!(report.task, "supervised");
        assert!(report.history.iter().all(|h| h.loss.is_finite()));
    }
}

#[test]
fn sage_extension_backbone_trains_end_to_end() {
    // GraphSAGE is an extension beyond the paper's GCN/GAT evaluation; the
    // whole federated pipeline must accept it transparently.
    let ds = Dataset::facebook_like(Scale::Smoke);
    let report = run_lumos(&ds, &lumos_cfg(Backbone::Sage, TaskKind::Supervised));
    assert!(
        report.test_metric > 0.3,
        "SAGE accuracy {}",
        report.test_metric
    );
    assert_eq!(report.backbone, "SAGE");
}

#[test]
fn gat_trains_unsupervised() {
    let ds = Dataset::lastfm_like(Scale::Smoke);
    let report = run_lumos(&ds, &lumos_cfg(Backbone::Gat, TaskKind::Unsupervised));
    assert!(report.test_metric > 0.45, "AUC {}", report.test_metric);
    assert_eq!(report.task, "unsupervised");
}

#[test]
fn constructor_report_is_consistent_with_dataset() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let report = run_lumos(&ds, &lumos_cfg(Backbone::Gcn, TaskKind::Supervised));
    let c = &report.constructor;
    assert_eq!(c.workloads.len(), ds.num_nodes());
    assert_eq!(
        c.max_workload,
        *c.workloads.iter().max().unwrap(),
        "max must match the workload vector"
    );
    assert_eq!(c.untrimmed_max, ds.graph.max_degree());
    assert!(c.max_workload <= c.untrimmed_max);
    // Coverage: total retained branches at least |E| (every edge kept
    // somewhere — Eq. 10's constraint).
    let total: usize = c.workloads.iter().sum();
    assert!(total >= ds.graph.num_edges());
}

#[test]
fn ablations_compose() {
    // Both ablations together: raw ego networks, untrimmed — the weakest
    // variant must still run and produce a valid metric.
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = lumos_cfg(Backbone::Gcn, TaskKind::Supervised)
        .without_virtual_nodes()
        .without_tree_trimming();
    let report = run_lumos(&ds, &cfg);
    assert!((0.0..=1.0).contains(&report.test_metric));
    assert!(!report.constructor.trimmed);
    assert_eq!(report.constructor.comparisons, 0);
}

#[test]
fn epsilon_zero_point_five_still_runs() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = lumos_cfg(Backbone::Gcn, TaskKind::Supervised).with_epsilon(0.5);
    let report = run_lumos(&ds, &cfg);
    assert!(report.test_metric.is_finite());
}

#[test]
fn centralized_baseline_agrees_across_facade() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = BaselineConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(40)
        .with_seed(99);
    let a = run_centralized(&ds, &cfg);
    let b = run_centralized(&ds, &cfg);
    assert_eq!(a.test_metric, b.test_metric, "deterministic under seed");
}

#[test]
fn reports_carry_system_identity() {
    let ds = Dataset::lastfm_like(Scale::Smoke);
    let r = run_lumos(&ds, &lumos_cfg(Backbone::Gcn, TaskKind::Supervised));
    assert_eq!(r.system, "lumos");
    assert_eq!(r.dataset, "lastfm");
    assert!(r.avg_epoch_secs > 0.0);
    assert!(r.avg_epoch_makespan > 0.0);
}
