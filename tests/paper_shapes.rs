//! Qualitative assertions encoding the paper's evaluation shapes at smoke
//! scale: who wins, where the savings come from, and what the workload
//! distribution looks like. These are the invariants `EXPERIMENTS.md`
//! documents at full scale.

use lumos::balance::{CompareBackend, SecurityMode};
use lumos::baselines::{run_centralized, run_naive_fedgnn, BaselineConfig, NaiveFedParams};
use lumos::core::{construct_assignment, run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;

#[test]
fn figure3_shape_centralized_over_lumos_over_naive() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let epochs = 60;
    let lumos = run_lumos(
        &ds,
        &LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_epochs(epochs)
            .with_mcmc_iterations(30),
    );
    let central = run_centralized(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, TaskKind::Supervised).with_epochs(epochs),
    );
    let naive = run_naive_fedgnn(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, TaskKind::Supervised).with_epochs(epochs),
        &NaiveFedParams::default(),
    );
    assert!(
        central.test_metric >= lumos.test_metric,
        "centralized {} must top lumos {}",
        central.test_metric,
        lumos.test_metric
    );
    assert!(
        lumos.test_metric > naive.test_metric + 0.1,
        "lumos {} must clearly beat naive {}",
        lumos.test_metric,
        naive.test_metric
    );
}

#[test]
fn figure7_shape_trimming_cuts_the_tail() {
    for ds in [
        Dataset::facebook_like(Scale::Smoke),
        Dataset::lastfm_like(Scale::Smoke),
    ] {
        let (trimmed, rep) = construct_assignment(
            &ds.graph,
            true,
            40,
            SecurityMode::CostModel,
            CompareBackend::Scalar,
            1,
            None,
        );
        trimmed.check_feasible(&ds.graph).unwrap();
        // The paper's Fig. 7 headline: the trimmed maximum is a fraction of
        // the untrimmed one (39 vs >150 on Facebook; 16 vs >100 on LastFM).
        assert!(
            (rep.max_workload as f64) < 0.5 * rep.untrimmed_max as f64,
            "{}: {} vs {}",
            ds.name,
            rep.max_workload,
            rep.untrimmed_max
        );
    }
}

#[test]
fn figure8_shape_trimming_saves_communication_and_time_model() {
    let ds = Dataset::lastfm_like(Scale::Smoke);
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(6)
        .with_mcmc_iterations(30);
    let trimmed = run_lumos(&ds, &base);
    let untrimmed = run_lumos(&ds, &base.clone().without_tree_trimming());
    let comm_saving = (untrimmed.avg_messages_per_device_per_epoch
        - trimmed.avg_messages_per_device_per_epoch)
        / untrimmed.avg_messages_per_device_per_epoch;
    // The paper reports 27–43% depending on dataset/task; at smoke scale we
    // require a clear double-digit saving.
    assert!(
        comm_saving > 0.10,
        "communication saving too small: {comm_saving}"
    );
    assert!(
        trimmed.avg_epoch_makespan < untrimmed.avg_epoch_makespan,
        "straggler makespan must shrink"
    );
}

#[test]
fn figure5_shape_epsilon_extremes() {
    // ε = 4 must not be clearly worse than ε = 0.5 (monotone trend up to
    // smoke-scale noise).
    let ds = Dataset::facebook_like(Scale::Smoke);
    let run = |eps: f64| {
        run_lumos(
            &ds,
            &LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
                .with_epochs(60)
                .with_mcmc_iterations(30)
                .with_epsilon(eps),
        )
        .test_metric
    };
    let lo = run(0.5);
    let hi = run(4.0);
    assert!(hi >= lo - 0.03, "ε=4 ({hi}) vs ε=0.5 ({lo})");
}

#[test]
fn figure6_shape_virtual_nodes_help_trimming_is_cheap() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(60)
        .with_mcmc_iterations(30);
    let full = run_lumos(&ds, &base).test_metric;
    let no_vn = run_lumos(&ds, &base.clone().without_virtual_nodes()).test_metric;
    let no_tt = run_lumos(&ds, &base.clone().without_tree_trimming()).test_metric;
    assert!(
        full > no_vn,
        "virtual nodes must improve accuracy: {full} vs {no_vn}"
    );
    assert!(
        (full - no_tt).abs() < 0.12,
        "trimming must cost almost nothing: {full} vs {no_tt}"
    );
}
