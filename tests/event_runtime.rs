//! Lockstep ⇄ event-driven equivalence of the full pipeline.
//!
//! PR 9 retired the epoch-lockstep core: every round's timing and every
//! aggregation decision now flows through `lumos_sim::EventDrivenRuntime`,
//! with the old post-hoc probe surviving only as the
//! `LumosConfig::with_lockstep_runtime` bisection aid. These properties pin
//! the refactor's two collapse contracts at the `run_lumos` level:
//!
//! 1. the event-driven runtime produces **bit-identical** reports to the
//!    lockstep path — for the default `FullSync` barrier on every scenario
//!    preset, and for the cut policies where the two code paths genuinely
//!    diverge;
//! 2. an `Async` quorum of the whole fleet *is* the synchronous barrier
//!    (`AggregationPolicy::resolve` collapses it up front).

use lumos::core::{run_lumos, LumosConfig, RunReport, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;
use lumos::sim::{AggregationPolicy, Scenario};
use proptest::prelude::*;

fn base_config(seed: u64) -> LumosConfig {
    LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(4)
        .with_mcmc_iterations(10)
        .with_seed(seed)
}

/// Asserts every deterministic field of two reports is identical, the
/// simulation summary included. Wall-clock fields are the only exempt ones.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
    assert_eq!(a.best_val_metric.to_bits(), b.best_val_metric.to_bits());
    assert_eq!(a.history.len(), b.history.len());
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha.epoch, hb.epoch);
        assert_eq!(
            ha.loss.to_bits(),
            hb.loss.to_bits(),
            "loss diverged at epoch {}",
            ha.epoch
        );
        assert_eq!(ha.val_metric.to_bits(), hb.val_metric.to_bits());
    }
    assert_eq!(
        a.avg_messages_per_device_per_epoch.to_bits(),
        b.avg_messages_per_device_per_epoch.to_bits()
    );
    assert_eq!(
        a.avg_epoch_makespan.to_bits(),
        b.avg_epoch_makespan.to_bits()
    );
    assert_eq!(a.init_messages, b.init_messages);
    assert_eq!(a.constructor.workloads, b.constructor.workloads);
    assert_eq!(a.sim.is_some(), b.sim.is_some());
    if let (Some(sa), Some(sb)) = (&a.sim, &b.sim) {
        assert_eq!(sa.scenario, sb.scenario);
        assert_eq!(
            sa.total_virtual_secs.to_bits(),
            sb.total_virtual_secs.to_bits(),
            "{}: simulated makespan diverged",
            sa.scenario
        );
        assert_eq!(
            sa.avg_epoch_virtual_secs.to_bits(),
            sb.avg_epoch_virtual_secs.to_bits()
        );
        assert_eq!(sa.straggler_sequence, sb.straggler_sequence);
        assert_eq!(sa.mean_utilization.to_bits(), sb.mean_utilization.to_bits());
        assert_eq!(sa.late_drops, sb.late_drops, "{}", sa.scenario);
        assert_eq!(sa.buffered_updates, sb.buffered_updates);
        assert_eq!(sa.wasted_updates, sb.wasted_updates);
        assert_eq!(sa.migrations, sb.migrations);
        assert_eq!(sa.migrated_nodes, sb.migrated_nodes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The event-driven `FullSync` run is bit-identical to the lockstep
    /// path on every scenario preset: the synchronous barrier is the
    /// degenerate schedule of the event-driven core, not a special case.
    #[test]
    fn event_driven_full_sync_is_bit_identical_to_lockstep(seed in any::<u64>()) {
        let ds = Dataset::facebook_like(Scale::Smoke);
        for scenario in Scenario::ALL {
            let cfg = base_config(seed).with_scenario(scenario);
            let event_driven = run_lumos(&ds, &cfg);
            let lockstep = run_lumos(&ds, &cfg.clone().with_lockstep_runtime());
            assert_reports_identical(&event_driven, &lockstep);
        }
    }

    /// An async quorum of the entire fleet collapses to `FullSync` bit for
    /// bit: waiting for everyone's update *is* the synchronous barrier.
    #[test]
    fn full_fleet_async_quorum_collapses_to_full_sync(seed in any::<u64>()) {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = base_config(seed).with_scenario(Scenario::StragglerTail);
        let barrier = run_lumos(&ds, &cfg);
        let collapsed = run_lumos(
            &ds,
            &cfg.clone().with_aggregation_policy(AggregationPolicy::Async {
                min_updates: ds.num_nodes(),
            }),
        );
        assert_reports_identical(&barrier, &collapsed);
    }
}

/// The cut policies are where the lockstep probe and the live event
/// handlers genuinely diverge in code path — and must still agree bit for
/// bit on every decision they make.
#[test]
fn cut_policies_agree_between_lockstep_and_event_driven() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    for policy in [
        AggregationPolicy::Deadline { factor: 2.0 },
        AggregationPolicy::Buffered {
            factor: 2.0,
            decay: 0.5,
        },
        AggregationPolicy::Async { min_updates: 240 },
    ] {
        for scenario in [Scenario::StragglerTail, Scenario::Churn] {
            let cfg = base_config(0xE7E47)
                .with_scenario(scenario)
                .with_aggregation_policy(policy);
            let event_driven = run_lumos(&ds, &cfg);
            let lockstep = run_lumos(&ds, &cfg.clone().with_lockstep_runtime());
            assert_reports_identical(&event_driven, &lockstep);
        }
    }
}
