//! Same-seed reproducibility of the full pipeline through the facade.
//!
//! Everything stochastic in the workspace draws from the seeded
//! xoshiro256++ streams pinned by `crates/common/tests/rng_golden.rs`, so
//! two runs with identical configs must produce bit-identical reports
//! (wall-clock fields excepted). This is what makes any CI failure in the
//! integration suites reproducible locally from the printed seed.

use lumos::core::{run_lumos, BalanceObjective, LumosConfig, RunReport, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;
use lumos::sim::Scenario;

fn smoke_run(seed: u64) -> RunReport {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(12)
        .with_mcmc_iterations(15)
        .with_seed(seed);
    run_lumos(&ds, &cfg)
}

/// Asserts every deterministic field of two reports is identical. Wall-clock
/// fields (`avg_epoch_secs`, `constructor.wall_secs`) are the only exempt
/// ones.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.system, b.system);
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.backbone, b.backbone);
    assert_eq!(a.task, b.task);
    assert_eq!(
        a.test_metric.to_bits(),
        b.test_metric.to_bits(),
        "test metric diverged"
    );
    assert_eq!(
        a.best_val_metric.to_bits(),
        b.best_val_metric.to_bits(),
        "validation metric diverged"
    );
    assert_eq!(a.history.len(), b.history.len());
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha.epoch, hb.epoch);
        assert_eq!(
            ha.loss.to_bits(),
            hb.loss.to_bits(),
            "loss diverged at epoch {}",
            ha.epoch
        );
        assert_eq!(
            ha.val_metric.to_bits(),
            hb.val_metric.to_bits(),
            "val metric diverged at epoch {}",
            ha.epoch
        );
    }
    assert_eq!(
        a.avg_messages_per_device_per_epoch.to_bits(),
        b.avg_messages_per_device_per_epoch.to_bits()
    );
    assert_eq!(a.init_messages, b.init_messages);
    assert_eq!(a.constructor.trimmed, b.constructor.trimmed);
    assert_eq!(
        a.constructor.workloads, b.constructor.workloads,
        "trimmed workloads diverged"
    );
    assert_eq!(a.constructor.max_workload, b.constructor.max_workload);
    assert_eq!(a.constructor.untrimmed_max, b.constructor.untrimmed_max);
    assert_eq!(a.constructor.secure_comm, b.constructor.secure_comm);
    assert_eq!(a.constructor.comparisons, b.constructor.comparisons);
    assert_eq!(a.constructor.server_messages, b.constructor.server_messages);
    assert_eq!(
        a.constructor.mcmc_trace, b.constructor.mcmc_trace,
        "MCMC trace diverged"
    );
}

#[test]
fn same_seed_gives_identical_reports() {
    let first = smoke_run(0xC0FFEE);
    let second = smoke_run(0xC0FFEE);
    assert_reports_identical(&first, &second);
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the opposite failure: a seed that is silently ignored
    // would make the reproducibility test above pass vacuously.
    let a = smoke_run(1);
    let b = smoke_run(2);
    let same_metric = a.test_metric.to_bits() == b.test_metric.to_bits();
    let same_workloads = a.constructor.workloads == b.constructor.workloads;
    assert!(
        !(same_metric && same_workloads),
        "seeds 1 and 2 produced bit-identical runs — seed is not being threaded"
    );
}

fn scenario_run(seed: u64, scenario: Scenario) -> RunReport {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(8)
        .with_mcmc_iterations(10)
        .with_seed(seed)
        .with_scenario(scenario);
    run_lumos(&ds, &cfg)
}

#[test]
fn same_seed_same_scenario_gives_identical_simulation() {
    // Churn exercises every stochastic piece of the simulator: fleet
    // sampling, dropout/rejoin, and the event-driven epoch timing.
    for scenario in [Scenario::StragglerTail, Scenario::Churn] {
        let a = scenario_run(0xDECADE, scenario);
        let b = scenario_run(0xDECADE, scenario);
        assert_reports_identical(&a, &b);
        let (sa, sb) = (a.sim.expect("sim summary"), b.sim.expect("sim summary"));
        assert_eq!(sa.scenario, sb.scenario);
        assert_eq!(
            sa.straggler_sequence, sb.straggler_sequence,
            "{}: straggler sequence diverged",
            sa.scenario
        );
        assert_eq!(
            sa.total_virtual_secs.to_bits(),
            sb.total_virtual_secs.to_bits(),
            "{}: simulated makespan diverged",
            sa.scenario
        );
        assert_eq!(
            sa.avg_epoch_virtual_secs.to_bits(),
            sb.avg_epoch_virtual_secs.to_bits()
        );
        assert_eq!(sa.mean_utilization.to_bits(), sb.mean_utilization.to_bits());
        assert_eq!(sa.dropped_device_rounds, sb.dropped_device_rounds);
    }
}

#[test]
fn scenario_is_a_pure_timing_overlay() {
    // Enabling a churn-free scenario must not touch the trainer's
    // stochastic streams: the learned model is bit-identical with and
    // without it. (Churn scenarios are deliberately NOT overlays anymore:
    // absent devices send no messages and leave the POOL.)
    let plain = smoke_run(0xDECADE);
    let ds = Dataset::facebook_like(Scale::Smoke);
    let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(12)
        .with_mcmc_iterations(15)
        .with_seed(0xDECADE)
        .with_scenario(Scenario::MobileFleet);
    let overlaid = run_lumos(&ds, &cfg);
    assert_reports_identical(&plain, &overlaid);
    assert!(plain.sim.is_none());
    assert!(overlaid.sim.is_some());
}

#[test]
fn weighted_objective_is_seed_deterministic_and_not_a_noop() {
    // VirtualSecs deliberately changes tree construction (it is NOT a pure
    // timing overlay — that contract belongs to the default TreeNodes
    // objective), but it must still be a pure function of the seed.
    let run = || {
        let ds = Dataset::facebook_like(Scale::Smoke);
        let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
            .with_epochs(8)
            .with_mcmc_iterations(10)
            .with_seed(0xBA1A4CE)
            .with_scenario(Scenario::StragglerTail)
            .with_balance_objective(BalanceObjective::VirtualSecs);
        run_lumos(&ds, &cfg)
    };
    let a = run();
    let b = run();
    assert_reports_identical(&a, &b);
    let (sa, sb) = (a.sim.expect("sim summary"), b.sim.expect("sim summary"));
    assert_eq!(sa.straggler_sequence, sb.straggler_sequence);
    assert_eq!(
        sa.total_virtual_secs.to_bits(),
        sb.total_virtual_secs.to_bits()
    );
    // And it really rebalances: the weighted run's trimmed workloads must
    // differ from the node-count run's under a heterogeneous fleet.
    assert!(
        a.constructor.weighted,
        "a scenario was supplied, so VirtualSecs must not degenerate"
    );
    let tree_nodes = scenario_run(0xBA1A4CE, Scenario::StragglerTail);
    assert!(!tree_nodes.constructor.weighted);
    assert_eq!(
        tree_nodes.constructor.max_weighted_workload as usize, tree_nodes.constructor.max_workload,
        "TreeNodes objective reports node counts in both fields"
    );
    assert_ne!(
        a.constructor.workloads, tree_nodes.constructor.workloads,
        "VirtualSecs must place trees differently under a Pareto fleet"
    );
}

#[test]
fn different_scenarios_time_differently() {
    // The overlay must actually depend on the scenario: a uniform fleet
    // and a Pareto tail cannot produce the same virtual makespan.
    let uniform = scenario_run(5, Scenario::Uniform).sim.unwrap();
    let tail = scenario_run(5, Scenario::StragglerTail).sim.unwrap();
    assert!(uniform.total_virtual_secs < tail.total_virtual_secs);
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let a = Dataset::facebook_like(Scale::Smoke);
    let b = Dataset::facebook_like(Scale::Smoke);
    assert_eq!(a.num_nodes(), b.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    let ea: Vec<(u32, u32)> = a.graph.edges().collect();
    let eb: Vec<(u32, u32)> = b.graph.edges().collect();
    assert_eq!(
        ea, eb,
        "generated edge lists diverged between identical calls"
    );
}
