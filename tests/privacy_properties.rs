//! Property-based tests of the privacy substrates, spanning crates:
//! Theorem 3 (unbiased recovery), Definition 1 (ε-LDP ratio), Definition 2
//! (comparison reveals only the ordering), and the Eq. 10 covering
//! constraint through greedy + MCMC.

use proptest::prelude::*;

use lumos::balance::{
    greedy_init, mcmc_balance, CompareOracle, McmcConfig, MeteredPlainOracle, SecureOracle,
};
use lumos::common::rng::Xoshiro256pp;
use lumos::crypto::{secure_compare, secure_difference, TwoParty};
use lumos::graph::Graph;
use lumos::ldp::{EncodedValue, OneBitMechanism};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closed-form unbiasedness: p·decode(1) + (1−p)·decode(0) == x.
    #[test]
    fn onebit_recovery_is_unbiased(
        eps in 0.05f64..8.0,
        x in 0.0f64..1.0,
    ) {
        let m = OneBitMechanism::new(eps, 0.0, 1.0);
        let p = m.prob_one(x);
        let mean = p * m.decode(EncodedValue::One) + (1.0 - p) * m.decode(EncodedValue::Zero);
        prop_assert!((mean - x).abs() < 1e-6, "bias {} at x={x}", mean - x);
    }

    /// Definition 1: output-probability ratios bounded by e^ε for any pair
    /// of inputs.
    #[test]
    fn onebit_ldp_ratio_bounded(
        eps in 0.05f64..6.0,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
    ) {
        let m = OneBitMechanism::new(eps, 0.0, 1.0);
        let bound = eps.exp() + 1e-9;
        prop_assert!(m.prob_one(x) / m.prob_one(y) <= bound);
        prop_assert!((1.0 - m.prob_one(x)) / (1.0 - m.prob_one(y)) <= bound);
    }

    /// The secure comparison computes exactly the plain ordering.
    #[test]
    fn secure_compare_equals_plain(
        a in 0u64..65_536,
        b in 0u64..65_536,
        seed in any::<u64>(),
    ) {
        let mut ctx = TwoParty::new(seed);
        let out = secure_compare(&mut ctx, a, b, 16);
        prop_assert_eq!(out.ordering(), a.cmp(&b));
    }

    /// The masked-difference protocol is exact over the full signed range
    /// used by workload objectives.
    #[test]
    fn secure_difference_is_exact(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut ctx = TwoParty::new(seed);
        prop_assert_eq!(secure_difference(&mut ctx, a, b), a - b);
    }

    /// Communication pattern of the comparison is input-independent
    /// (a necessary condition for the zero-knowledge claim of Theorem 5).
    #[test]
    fn compare_transcript_shape_is_input_independent(
        a in 0u64..256,
        b in 0u64..256,
    ) {
        let run = |x: u64, y: u64| {
            let mut ctx = TwoParty::with_transcript(7);
            let _ = secure_compare(&mut ctx, x, y, 8);
            (ctx.meter, ctx.transcript().len())
        };
        prop_assert_eq!(run(a, b), run(0, 255));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Greedy + MCMC always preserve the covering constraint (Eq. 10) on
    /// random graphs, and never exceed the untrimmed maximum.
    #[test]
    fn balancer_preserves_edge_coverage(
        seed in any::<u64>(),
        n in 20usize..80,
        p in 0.05f64..0.3,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = lumos::graph::generate::erdos_renyi(n, p, &mut rng);
        let mut oracle = MeteredPlainOracle::new();
        let init = greedy_init(&g, &mut oracle);
        prop_assert!(init.check_feasible(&g).is_ok());
        let out = mcmc_balance(
            &g,
            init,
            &McmcConfig { iterations: 25, seed },
            &mut oracle,
        );
        prop_assert!(out.assignment.check_feasible(&g).is_ok());
        prop_assert!(out.assignment.objective() <= g.max_degree().max(1));
    }
}

/// The secure and cost-model oracles agree on decisions *and* communication
/// for a realistic greedy run.
#[test]
fn oracle_equivalence_on_a_real_graph() {
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let g = lumos::graph::generate::erdos_renyi(60, 0.15, &mut rng);
    let mut secure = SecureOracle::new(3);
    let mut plain = MeteredPlainOracle::new();
    let a = greedy_init(&g, &mut secure);
    let b = greedy_init(&g, &mut plain);
    assert_eq!(a, b);
    assert_eq!(secure.meter(), plain.meter());
}

/// Isolated vertices never break the pipeline.
#[test]
fn isolated_vertices_survive_the_constructor() {
    let mut g = Graph::new(10);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    // Vertices 4..9 isolated.
    let mut oracle = MeteredPlainOracle::new();
    let init = greedy_init(&g, &mut oracle);
    init.check_feasible(&g).unwrap();
    let out = mcmc_balance(
        &g,
        init,
        &McmcConfig {
            iterations: 10,
            seed: 1,
        },
        &mut oracle,
    );
    out.assignment.check_feasible(&g).unwrap();
    for v in 4..10u32 {
        assert_eq!(out.assignment.workload(v), 0);
    }
}
