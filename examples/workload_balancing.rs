//! The heterogeneity-aware tree constructor in isolation (§V): watch the
//! greedy initialization and the MCMC iteration flatten a heavy-tailed
//! workload distribution, with every comparison running under the secure
//! two-party protocol.
//!
//! ```sh
//! cargo run --release --example workload_balancing
//! ```

use lumos::balance::{
    greedy_init, mcmc_balance, summarize, Assignment, CompareOracle, McmcConfig, SecureOracle,
};
use lumos::common::rng::Xoshiro256pp;
use lumos::graph::generate::{homophilous_powerlaw, PowerLawConfig};

fn main() {
    // A power-law social graph: a few hub devices, many leaves.
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let labels: Vec<u32> = (0..400).map(|_| rng.next_below(4) as u32).collect();
    let cfg = PowerLawConfig {
        alpha: 2.1,
        min_degree: 2,
        max_degree: 80,
        homophily: 0.7,
    };
    let g = homophilous_powerlaw(&labels, &cfg, &mut rng);
    println!(
        "graph: {} devices, {} edges, max degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // Untrimmed: workload == degree. The hubs are stragglers.
    let full = Assignment::full(&g);
    let s0 = summarize(&full);
    println!(
        "untrimmed  : max {} | mean {:.1} | imbalance {:.1}x",
        s0.max, s0.mean, s0.imbalance
    );

    // Algorithm 1 — greedy initialization. Every degree comparison runs
    // through the real simulated OT-based comparison circuit.
    let mut oracle = SecureOracle::new(7);
    let init = greedy_init(&g, &mut oracle);
    let s1 = summarize(&init);
    println!(
        "greedy     : max {} | mean {:.1} | imbalance {:.1}x",
        s1.max, s1.mean, s1.imbalance
    );

    // Algorithm 2 — MCMC with Metropolis–Hastings acceptance.
    let out = mcmc_balance(
        &g,
        init,
        &McmcConfig {
            iterations: 150,
            seed: 9,
        },
        &mut oracle,
    );
    let s2 = summarize(&out.assignment);
    println!(
        "greedy+MCMC: max {} | mean {:.1} | imbalance {:.1}x ({} accepted moves)",
        s2.max, s2.mean, s2.imbalance, out.stats.accepted
    );

    // Everything above ran under the secure-comparison protocol:
    let m = oracle.meter();
    println!(
        "secure comparisons: {} protocol runs, {} messages, {} KiB, {} rounds — \
         no device ever saw another's degree",
        oracle.comparisons(),
        m.messages,
        m.bytes / 1024,
        m.rounds
    );
    out.assignment
        .check_feasible(&g)
        .expect("every relation still represented in at least one tree");
    println!("feasibility check passed: every edge survives in some tree");
}
