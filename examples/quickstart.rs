//! Quickstart: train Lumos on a synthetic Facebook-like social graph and
//! compare it against the centralized reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lumos::baselines::{run_centralized, BaselineConfig};
use lumos::core::{run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;

fn main() {
    // 1. A dataset: 300 devices, each holding only its own ego network.
    let ds = Dataset::facebook_like(Scale::Smoke);
    println!(
        "dataset: {} — {} devices, {} relations, {} features, {} classes",
        ds.name,
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.feature_dim,
        ds.num_classes
    );

    // 2. Lumos with the paper's defaults: GCN backbone, ε = 2,
    //    heterogeneity-aware tree trimming, LDP feature exchange.
    let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(60)
        .with_mcmc_iterations(50);
    let lumos = run_lumos(&ds, &cfg);
    println!(
        "Lumos      : accuracy {:.1}%  (max workload {} → {}, {} LDP messages)",
        100.0 * lumos.test_metric,
        lumos.constructor.untrimmed_max,
        lumos.constructor.max_workload,
        lumos.init_messages
    );

    // 3. The centralized skyline (server sees everything).
    let central = run_centralized(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, TaskKind::Supervised).with_epochs(60),
    );
    println!(
        "Centralized: accuracy {:.1}%  (no privacy)",
        100.0 * central.test_metric
    );

    println!(
        "privacy cost: {:.1} accuracy points for ε=2 LDP features + hidden degrees",
        100.0 * (central.test_metric - lumos.test_metric)
    );
}
