//! Head-to-head comparison of all four systems of the paper's evaluation
//! (§VIII-C) on one dataset — a miniature Figure 3.
//!
//! ```sh
//! cargo run --release --example system_comparison
//! ```

use lumos::baselines::{
    run_centralized, run_lpgnn, run_naive_fedgnn, BaselineConfig, LpgnnParams, NaiveFedParams,
};
use lumos::common::table::{fmt2, Table};
use lumos::core::{run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;

fn main() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    let task = TaskKind::Supervised;
    let epochs = 60;

    let mut table = Table::new(
        "Supervised accuracy, Facebook-like (smoke scale)",
        &["system", "accuracy %", "privacy"],
    );

    let lumos = run_lumos(
        &ds,
        &LumosConfig::new(Backbone::Gcn, task)
            .with_epochs(epochs)
            .with_mcmc_iterations(50),
    );
    table.push_row([
        "Lumos".to_string(),
        fmt2(100.0 * lumos.test_metric),
        "ε-LDP features + hidden degrees + local labels".to_string(),
    ]);

    let central = run_centralized(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, task).with_epochs(epochs),
    );
    table.push_row([
        "Centralized GNN".to_string(),
        fmt2(100.0 * central.test_metric),
        "none (server sees everything)".to_string(),
    ]);

    let lpgnn = run_lpgnn(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, task).with_epochs(epochs),
        &LpgnnParams::default(),
    );
    table.push_row([
        "LPGNN".to_string(),
        fmt2(100.0 * lpgnn.test_metric),
        "ε_x features + ε_y labels, server knows the graph".to_string(),
    ]);

    let naive = run_naive_fedgnn(
        &ds,
        &BaselineConfig::new(Backbone::Gcn, task).with_epochs(epochs),
        &NaiveFedParams::default(),
    );
    table.push_row([
        "Naive FedGNN".to_string(),
        fmt2(100.0 * naive.test_metric),
        "noise on features, labels AND adjacency".to_string(),
    ]);

    table.print();
    println!(
        "Lumos recovers {:.0}% of the centralized accuracy while naive \
         federation collapses — the paper's core result.",
        100.0 * lumos.test_metric / central.test_metric
    );
}
