//! Chaos engineering for a federated fleet: inject seeded message loss
//! and an aggregator outage into a straggler-tail training run and watch
//! the recovery layer retry, buffer, and fail over — deterministically.
//!
//! ```sh
//! cargo run --release --example chaos_fleet
//! ```

use lumos::core::{run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;
use lumos::sim::{FaultSpec, OutageWindow, RecoveryPolicy, Scenario};
use lumos::topo::TopologyConfig;

fn main() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    println!(
        "dataset: {} — {} devices, {} relations\n",
        ds.name,
        ds.num_nodes(),
        ds.graph.num_edges()
    );

    // A straggler-tail fleet behind four regional aggregators. The fault
    // plan: 5% of upload attempts are lost, and aggregator 1 goes dark
    // for rounds 2–3 (its shard re-homes to the deterministic successor).
    let faults = FaultSpec::Faults {
        crash_rate: 0.0,
        loss_rate: 0.05,
        duplicate_rate: 0.0,
        outages: vec![OutageWindow {
            aggregator: 1,
            from_round: 2,
            until_round: 4,
        }],
    };
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(8)
        .with_mcmc_iterations(30)
        .with_seed(8)
        .with_scenario(Scenario::StragglerTail)
        .with_topology(TopologyConfig::Hierarchical { aggregators: 4 });

    // 1. The calm run: same fleet, same seed, no faults.
    let calm = run_lumos(&ds, &base);
    let calm_sim = calm.sim.as_ref().expect("scenario run reports sim stats");

    // 2. The chaos run: identical except for the injected faults; the
    //    default recovery policy (1s timeout, exponential backoff with
    //    seeded jitter, 3 retries, then degrade into the staleness
    //    buffer) cleans up after them.
    let chaos = run_lumos(
        &ds,
        &base
            .clone()
            .with_faults(faults)
            .with_recovery(RecoveryPolicy::default()),
    );
    let chaos_sim = chaos.sim.as_ref().expect("scenario run reports sim stats");

    println!("{:<28} {:>12} {:>12}", "", "calm", "chaos");
    println!(
        "{:<28} {:>12.4} {:>12.4}",
        "test accuracy", calm.test_metric, chaos.test_metric
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "sim secs / epoch", calm_sim.avg_epoch_virtual_secs, chaos_sim.avg_epoch_virtual_secs
    );

    println!("\nrecovery counters (chaos run):");
    println!("  lost upload attempts : {:>6}", chaos_sim.lost_messages);
    println!("  retries scheduled    : {:>6}", chaos_sim.retries);
    println!("  backoff secs waited  : {:>9.2}", chaos_sim.retry_secs);
    println!("  crashed device-rounds: {:>6}", chaos_sim.crashed_devices);
    println!("  failover shard-rounds: {:>6}", chaos_sim.failovers);
    println!(
        "  buffered updates     : {:>6}   (exhausted sends degrade here, never vanish)",
        chaos_sim.buffered_updates
    );
    println!(
        "  wasted updates       : {:>6}   (zero by construction)",
        chaos_sim.wasted_updates
    );

    // 3. Determinism: replay the chaos run — same seed, same fault spec —
    //    and every counter and every learned weight comes back identical.
    let replay = run_lumos(
        &ds,
        &base
            .clone()
            .with_faults(FaultSpec::Faults {
                crash_rate: 0.0,
                loss_rate: 0.05,
                duplicate_rate: 0.0,
                outages: vec![OutageWindow {
                    aggregator: 1,
                    from_round: 2,
                    until_round: 4,
                }],
            })
            .with_recovery(RecoveryPolicy::default()),
    );
    assert_eq!(
        chaos.test_metric.to_bits(),
        replay.test_metric.to_bits(),
        "chaos runs are seeded: replays must be bit-identical"
    );
    assert_eq!(chaos.sim, replay.sim);
    println!("\nreplayed the chaos run: bit-identical, counters included.");
}
