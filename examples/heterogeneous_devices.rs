//! Heterogeneous decentralized devices: train Lumos under the
//! straggler-tail scenario and watch the discrete-event simulator price
//! each epoch by the fleet's actual capabilities.
//!
//! ```sh
//! cargo run --release --example heterogeneous_devices
//! ```

use lumos::core::{run_lumos, BalanceObjective, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;
use lumos::sim::{Scenario, ScenarioState};

fn main() {
    let ds = Dataset::facebook_like(Scale::Smoke);
    println!(
        "dataset: {} — {} devices, {} relations\n",
        ds.name,
        ds.num_nodes(),
        ds.graph.num_edges()
    );

    // 1. What does a straggler-tail fleet look like? Sample it directly.
    let fleet = ScenarioState::new(Scenario::StragglerTail, ds.num_nodes(), 8);
    let mut rates: Vec<f64> = fleet.profiles().iter().map(|p| p.compute_rate).collect();
    rates.sort_by(f64::total_cmp);
    println!(
        "straggler-tail fleet: compute rate min {:.1} / median {:.1} / max {:.1} units/s",
        rates[0],
        rates[rates.len() / 2],
        rates[rates.len() - 1]
    );

    // 2. Train under each scenario. Same seed ⇒ identical training math;
    //    only the simulated timing differs.
    let base = LumosConfig::new(Backbone::Gcn, TaskKind::Supervised)
        .with_epochs(8)
        .with_mcmc_iterations(30)
        .with_seed(8);
    println!(
        "\n{:<16} {:>14} {:>12} {:>16} {:>10}",
        "scenario", "epoch secs", "utilization", "top straggler", "dropped"
    );
    for scenario in Scenario::ALL {
        let report = run_lumos(&ds, &base.clone().with_scenario(scenario));
        let sim = report.sim.expect("scenario run reports sim stats");
        let straggler = sim
            .dominant_straggler()
            .map_or("n/a".to_string(), |(d, c)| format!("dev {d} x{c}"));
        println!(
            "{:<16} {:>14.2} {:>12.2} {:>16} {:>10}",
            sim.scenario,
            sim.avg_epoch_virtual_secs,
            sim.mean_utilization,
            straggler,
            sim.dropped_device_rounds
        );
    }

    // 3. Tree trimming's win under extreme heterogeneity: when the slow
    //    tail hits a high-degree device, trimming shrinks the straggler's
    //    tree exactly where a work unit costs the most virtual seconds.
    //    (When the slowest device happens to have a tiny ego network —
    //    other seeds — capability, not degree, sets the makespan and the
    //    win shrinks: exactly the effect this simulator exists to expose.)
    let tail = base.clone().with_scenario(Scenario::StragglerTail);
    let trimmed = run_lumos(&ds, &tail).sim.unwrap();
    let untrimmed = run_lumos(&ds, &tail.clone().without_tree_trimming())
        .sim
        .unwrap();
    println!(
        "\nstraggler-tail, trimming on : {:>8.2} sim secs/epoch",
        trimmed.avg_epoch_virtual_secs
    );
    println!(
        "straggler-tail, trimming off: {:>8.2} sim secs/epoch  ({:.0}% slower)",
        untrimmed.avg_epoch_virtual_secs,
        (untrimmed.avg_epoch_virtual_secs / trimmed.avg_epoch_virtual_secs - 1.0) * 100.0
    );

    // 4. Heterogeneity-aware balancing: price each tree node in virtual
    //    microseconds (from the fleet's capability profiles) and let the
    //    MCMC minimize the weighted makespan instead of tree-node counts.
    //    A throttled device then sheds branches even when its degree is
    //    average — the straggler split capability-vs-degree exposes.
    let weighted = run_lumos(
        &ds,
        &tail
            .clone()
            .with_balance_objective(BalanceObjective::VirtualSecs),
    )
    .sim
    .unwrap();
    println!(
        "straggler-tail, balance virtual secs: {:>8.2} sim secs/epoch  ({:.0}% of the node-count makespan)",
        weighted.avg_epoch_virtual_secs,
        weighted.avg_epoch_virtual_secs / trimmed.avg_epoch_virtual_secs * 100.0
    );
}
