//! Unsupervised federated link prediction (§VI-C-b): devices learn node
//! embeddings without any labels by predicting which of their relations
//! exist, under full feature and degree protection.
//!
//! The scenario: a decentralized social app wants friend recommendations.
//! No device reveals its friend count (degree) or its profile vector.
//!
//! ```sh
//! cargo run --release --example private_link_prediction
//! ```

use lumos::core::{run_lumos, LumosConfig, TaskKind};
use lumos::data::{Dataset, Scale};
use lumos::gnn::Backbone;

fn main() {
    let ds = Dataset::lastfm_like(Scale::Smoke);
    println!(
        "dataset: {} — {} devices, {} follow relations",
        ds.name,
        ds.num_nodes(),
        ds.graph.num_edges()
    );

    // Sweep the privacy budget to expose the privacy/utility trade-off the
    // paper studies in Figure 5.
    for epsilon in [0.5, 2.0, 4.0] {
        let cfg = LumosConfig::new(Backbone::Gcn, TaskKind::Unsupervised)
            .with_epochs(150)
            .with_mcmc_iterations(30)
            .with_epsilon(epsilon);
        let report = run_lumos(&ds, &cfg);
        println!(
            "ε = {epsilon:>3}: link-prediction ROC-AUC = {:.4} \
             ({:.1} msgs/device/epoch)",
            report.test_metric, report.avg_messages_per_device_per_epoch
        );
    }
    println!("larger ε ⇒ less noise ⇒ better AUC — the Figure 5b trend");
}
